#include "crypto/secp256k1.h"

#include <cassert>
#include <cstring>

#include "crypto/sha256.h"

namespace onoff::secp256k1 {

namespace {

using u128 = unsigned __int128;

// p = 2^256 - 2^32 - 977
constexpr U256 kP(0xffffffffffffffffULL, 0xffffffffffffffffULL,
                  0xffffffffffffffffULL, 0xfffffffefffffc2fULL);
// n (group order)
constexpr U256 kN(0xffffffffffffffffULL, 0xfffffffffffffffeULL,
                  0xbaaedce6af48a03bULL, 0xbfd25e8cd0364141ULL);
// 2^256 - p, fits in one limb.
constexpr uint64_t kC = 0x1000003d1ULL;

// ---- Field arithmetic mod p (fast reduction) ----

// Adds two 4-limb values, returning the carry-out.
inline uint64_t AddLimbs(const U256& a, const U256& b, uint64_t out[4]) {
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 s = static_cast<u128>(a.limb(i)) + b.limb(i) + carry;
    out[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  return carry;
}

inline U256 FromLimbs(const uint64_t v[4]) { return U256(v[3], v[2], v[1], v[0]); }

// Reduces a value known to be < 2p into [0, p).
inline U256 CondSubP(const U256& a) { return a >= kP ? a - kP : a; }

U256 FieldAdd(const U256& a, const U256& b) {
  uint64_t out[4];
  uint64_t carry = AddLimbs(a, b, out);
  U256 r = FromLimbs(out);
  if (carry) {
    // r = a + b - 2^256; add back c (since 2^256 ≡ c mod p).
    r = r + U256(kC);
  }
  return CondSubP(r);
}

U256 FieldSub(const U256& a, const U256& b) {
  if (a >= b) return a - b;
  return a + (kP - b);
}

U256 FieldNeg(const U256& a) { return a.IsZero() ? a : kP - a; }

// 512-bit -> mod-p fold: value = high * 2^256 + low ≡ high * c + low.
U256 FieldMul(const U256& a, const U256& b) {
  // Full 256x256 product.
  uint64_t f[8] = {0};
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 cur = static_cast<u128>(a.limb(i)) * b.limb(j) + f[i + j] + carry;
      f[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    f[i + 4] = carry;
  }
  // First fold: r (5 limbs) = low + high * c.
  uint64_t r[5] = {f[0], f[1], f[2], f[3], 0};
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 cur = static_cast<u128>(f[i + 4]) * kC + r[i] + carry;
    r[i] = static_cast<uint64_t>(cur);
    carry = static_cast<uint64_t>(cur >> 64);
  }
  r[4] = carry;
  // Second fold: r4 * c + r[0..3].
  u128 cur = static_cast<u128>(r[4]) * kC + r[0];
  uint64_t s[4];
  s[0] = static_cast<uint64_t>(cur);
  carry = static_cast<uint64_t>(cur >> 64);
  for (int i = 1; i < 4; ++i) {
    u128 c2 = static_cast<u128>(r[i]) + carry;
    s[i] = static_cast<uint64_t>(c2);
    carry = static_cast<uint64_t>(c2 >> 64);
  }
  U256 res = FromLimbs(s);
  if (carry) res = res + U256(kC);  // third fold, carry can only be 1
  return CondSubP(res);
}

U256 FieldSqr(const U256& a) { return FieldMul(a, a); }

// (x + m) >> 1 handling the 257-bit intermediate.
U256 HalfMod(const U256& x, const U256& m) {
  if (!x.Bit(0)) return x >> 1;
  uint64_t out[4];
  uint64_t carry = AddLimbs(x, m, out);
  U256 sum = FromLimbs(out) >> 1;
  if (carry) sum.SetBit(255);
  return sum;
}

// a^{-1} mod m for odd m, gcd(a, m) = 1, via binary extended GCD.
U256 ModInverse(const U256& a, const U256& m) {
  U256 u = a % m;
  assert(!u.IsZero());
  U256 v = m;
  U256 x1(1);
  U256 x2(0);
  while (u != U256(1) && v != U256(1)) {
    while (!u.Bit(0)) {
      u = u >> 1;
      x1 = HalfMod(x1, m);
    }
    while (!v.Bit(0)) {
      v = v >> 1;
      x2 = HalfMod(x2, m);
    }
    if (u >= v) {
      u -= v;
      x1 = x1 >= x2 ? x1 - x2 : x1 + (m - x2);
    } else {
      v -= u;
      x2 = x2 >= x1 ? x2 - x1 : x2 + (m - x1);
    }
  }
  return u == U256(1) ? x1 : x2;
}

U256 FieldInv(const U256& a) { return ModInverse(a, kP); }

// Square root mod p via a^((p+1)/4); caller must verify the result squares
// back (non-residues return garbage).
U256 FieldSqrt(const U256& a) {
  // (p+1)/4
  static const U256 kExp = (kP + U256(1)) >> 2;
  U256 result(1);
  U256 base = a;
  for (int i = 0; i < kExp.BitLength(); ++i) {
    if (kExp.Bit(i)) result = FieldMul(result, base);
    base = FieldSqr(base);
  }
  return result;
}

// ---- Jacobian point arithmetic (a = 0 curve) ----

struct Jacobian {
  U256 x;
  U256 y;
  U256 z;  // z == 0 means infinity

  bool IsInfinity() const { return z.IsZero(); }
};

Jacobian ToJacobian(const AffinePoint& p) {
  if (p.infinity) return {U256(1), U256(1), U256(0)};
  return {p.x, p.y, U256(1)};
}

AffinePoint ToAffine(const Jacobian& p) {
  if (p.IsInfinity()) return {U256(), U256(), true};
  U256 zinv = FieldInv(p.z);
  U256 zinv2 = FieldSqr(zinv);
  U256 zinv3 = FieldMul(zinv2, zinv);
  return {FieldMul(p.x, zinv2), FieldMul(p.y, zinv3), false};
}

Jacobian JacDouble(const Jacobian& p) {
  if (p.IsInfinity() || p.y.IsZero()) return {U256(1), U256(1), U256(0)};
  U256 a = FieldSqr(p.x);                      // A = X1^2
  U256 b = FieldSqr(p.y);                      // B = Y1^2
  U256 c = FieldSqr(b);                        // C = B^2
  U256 t = FieldSqr(FieldAdd(p.x, b));         // (X1+B)^2
  U256 d = FieldMul(U256(2), FieldSub(FieldSub(t, a), c));  // D
  U256 e = FieldMul(U256(3), a);               // E = 3A
  U256 f = FieldSqr(e);                        // F = E^2
  U256 x3 = FieldSub(f, FieldMul(U256(2), d));
  U256 y3 = FieldSub(FieldMul(e, FieldSub(d, x3)), FieldMul(U256(8), c));
  U256 z3 = FieldMul(U256(2), FieldMul(p.y, p.z));
  return {x3, y3, z3};
}

Jacobian JacAdd(const Jacobian& p, const Jacobian& q) {
  if (p.IsInfinity()) return q;
  if (q.IsInfinity()) return p;
  U256 z1z1 = FieldSqr(p.z);
  U256 z2z2 = FieldSqr(q.z);
  U256 u1 = FieldMul(p.x, z2z2);
  U256 u2 = FieldMul(q.x, z1z1);
  U256 s1 = FieldMul(p.y, FieldMul(z2z2, q.z));
  U256 s2 = FieldMul(q.y, FieldMul(z1z1, p.z));
  if (u1 == u2) {
    if (s1 != s2) return {U256(1), U256(1), U256(0)};  // P + (-P)
    return JacDouble(p);
  }
  U256 h = FieldSub(u2, u1);
  U256 i = FieldSqr(FieldMul(U256(2), h));
  U256 j = FieldMul(h, i);
  U256 r = FieldMul(U256(2), FieldSub(s2, s1));
  U256 v = FieldMul(u1, i);
  U256 x3 = FieldSub(FieldSub(FieldSqr(r), j), FieldMul(U256(2), v));
  U256 y3 = FieldSub(FieldMul(r, FieldSub(v, x3)),
                     FieldMul(U256(2), FieldMul(s1, j)));
  U256 z3 = FieldMul(U256(2), FieldMul(FieldMul(p.z, q.z), h));
  return {x3, y3, z3};
}

Jacobian JacScalarMul(const Jacobian& p, const U256& k) {
  Jacobian result{U256(1), U256(1), U256(0)};
  if (k.IsZero() || p.IsInfinity()) return result;
  for (int i = k.BitLength() - 1; i >= 0; --i) {
    result = JacDouble(result);
    if (k.Bit(i)) result = JacAdd(result, p);
  }
  return result;
}

const AffinePoint kG = {
    U256(0x79be667ef9dcbbacULL, 0x55a06295ce870b07ULL, 0x029bfcdb2dce28d9ULL,
         0x59f2815b16f81798ULL),
    U256(0x483ada7726a3c465ULL, 0x5da4fbfc0e1108a8ULL, 0xfd17b448a6855419ULL,
         0x9c47d08ffb10d4b8ULL),
    false};

}  // namespace

const U256& FieldPrime() {
  static const U256 p = kP;
  return p;
}

const U256& GroupOrder() {
  static const U256 n = kN;
  return n;
}

const AffinePoint& Generator() { return kG; }

bool IsOnCurve(const AffinePoint& pt) {
  if (pt.infinity) return true;
  if (pt.x >= kP || pt.y >= kP) return false;
  U256 lhs = FieldSqr(pt.y);
  U256 rhs = FieldAdd(FieldMul(FieldSqr(pt.x), pt.x), U256(7));
  return lhs == rhs;
}

AffinePoint Add(const AffinePoint& a, const AffinePoint& b) {
  return ToAffine(JacAdd(ToJacobian(a), ToJacobian(b)));
}

AffinePoint ScalarMul(const AffinePoint& pt, const U256& scalar) {
  return ToAffine(JacScalarMul(ToJacobian(pt), scalar % kN));
}

AffinePoint ScalarBaseMul(const U256& k) { return ScalarMul(kG, k); }

Bytes Signature::Serialize() const {
  Bytes out = r.ToBytes();
  Bytes sb = s.ToBytes();
  Append(out, sb);
  out.push_back(v);
  return out;
}

Result<Signature> Signature::Deserialize(BytesView data) {
  if (data.size() != 65) {
    return Status::InvalidArgument("signature must be 65 bytes (r||s||v)");
  }
  Signature sig;
  sig.r = U256::FromBigEndianTruncating(data.subspan(0, 32));
  sig.s = U256::FromBigEndianTruncating(data.subspan(32, 32));
  sig.v = data[64];
  return sig;
}

Result<PrivateKey> PrivateKey::FromScalar(const U256& d) {
  if (d.IsZero() || d >= kN) {
    return Status::InvalidArgument("private key scalar out of range [1, n-1]");
  }
  return PrivateKey(d);
}

Result<PrivateKey> PrivateKey::FromHex(std::string_view hex) {
  ONOFF_ASSIGN_OR_RETURN(U256 d, U256::FromHex(hex));
  return FromScalar(d);
}

PrivateKey PrivateKey::FromSeed(std::string_view seed) {
  Bytes material = BytesOf(seed);
  for (;;) {
    Hash32 h = Keccak256(material);
    U256 d = U256::FromBigEndianTruncating(BytesView(h.data(), h.size()));
    if (!d.IsZero() && d < kN) return PrivateKey(d);
    material.assign(h.begin(), h.end());
  }
}

AffinePoint PrivateKey::PublicKey() const { return ScalarBaseMul(d_); }

Address PrivateKey::EthAddress() const {
  return PublicKeyToAddress(PublicKey());
}

Bytes SerializePoint(const AffinePoint& pt, bool compressed) {
  Bytes out;
  if (compressed) {
    out.push_back(pt.y.Bit(0) ? 0x03 : 0x02);
    Bytes x = pt.x.ToBytes();
    Append(out, x);
  } else {
    out.push_back(0x04);
    Bytes x = pt.x.ToBytes();
    Bytes y = pt.y.ToBytes();
    Append(out, x);
    Append(out, y);
  }
  return out;
}

Result<AffinePoint> ParsePoint(BytesView data) {
  if (data.size() == 65 && data[0] == 0x04) {
    AffinePoint pt;
    pt.x = U256::FromBigEndianTruncating(data.subspan(1, 32));
    pt.y = U256::FromBigEndianTruncating(data.subspan(33, 32));
    if (!IsOnCurve(pt)) {
      return Status::VerificationFailed("point not on curve");
    }
    return pt;
  }
  if (data.size() == 33 && (data[0] == 0x02 || data[0] == 0x03)) {
    AffinePoint pt;
    pt.x = U256::FromBigEndianTruncating(data.subspan(1, 32));
    if (pt.x >= kP) {
      return Status::VerificationFailed("x exceeds field prime");
    }
    U256 y2 = FieldAdd(FieldMul(FieldSqr(pt.x), pt.x), U256(7));
    U256 y = FieldSqrt(y2);
    if (FieldSqr(y) != y2) {
      return Status::VerificationFailed("x is not on the curve");
    }
    bool want_odd = data[0] == 0x03;
    pt.y = (y.Bit(0) == want_odd) ? y : FieldNeg(y);
    return pt;
  }
  return Status::VerificationFailed("malformed SEC1 point encoding");
}

Address PublicKeyToAddress(const AffinePoint& pub) {
  Bytes xy = pub.x.ToBytes();
  Bytes yb = pub.y.ToBytes();
  Append(xy, yb);
  Hash32 h = Keccak256(xy);
  Address out;
  auto r = Address::FromBytes(BytesView(h.data() + 12, 20));
  assert(r.ok());
  return *r;
}

namespace {

// RFC 6979 deterministic nonce generation (qlen = hlen = 256 bits).
// Invokes `accept` for each candidate; stops at the first accepted k.
template <typename AcceptFn>
U256 Rfc6979Nonce(const Hash32& digest, const U256& privkey, AcceptFn accept) {
  Bytes x = privkey.ToBytes();
  // bits2octets: digest interpreted mod n.
  U256 z = U256::FromBigEndianTruncating(BytesView(digest.data(), 32)) % kN;
  Bytes h1 = z.ToBytes();

  std::array<uint8_t, 32> v;
  std::array<uint8_t, 32> k;
  v.fill(0x01);
  k.fill(0x00);

  auto hmac = [&](std::initializer_list<BytesView> parts) {
    Bytes msg;
    for (const auto& p : parts) Append(msg, p);
    return HmacSha256(BytesView(k.data(), 32), msg);
  };

  const uint8_t zero = 0x00;
  const uint8_t one = 0x01;
  k = hmac({BytesView(v.data(), 32), BytesView(&zero, 1), BytesView(x), BytesView(h1)});
  v = HmacSha256(BytesView(k.data(), 32), BytesView(v.data(), 32));
  k = hmac({BytesView(v.data(), 32), BytesView(&one, 1), BytesView(x), BytesView(h1)});
  v = HmacSha256(BytesView(k.data(), 32), BytesView(v.data(), 32));

  for (;;) {
    v = HmacSha256(BytesView(k.data(), 32), BytesView(v.data(), 32));
    U256 candidate = U256::FromBigEndianTruncating(BytesView(v.data(), 32));
    if (!candidate.IsZero() && candidate < kN && accept(candidate)) {
      return candidate;
    }
    k = hmac({BytesView(v.data(), 32), BytesView(&zero, 1)});
    v = HmacSha256(BytesView(k.data(), 32), BytesView(v.data(), 32));
  }
}

}  // namespace

Result<Signature> Sign(const Hash32& digest, const PrivateKey& key) {
  U256 z = U256::FromBigEndianTruncating(BytesView(digest.data(), 32)) % kN;
  Signature sig;
  bool y_odd = false;

  Rfc6979Nonce(digest, key.scalar(), [&](const U256& k) {
    AffinePoint r_point = ScalarBaseMul(k);
    // Reject the (astronomically rare) r >= n case so the recovery id stays
    // in {0, 1} and v in {27, 28}, which is all Ethereum accepts.
    if (r_point.x >= kN) return false;
    U256 r = r_point.x;
    if (r.IsZero()) return false;
    U256 kinv = ModInverse(k, kN);
    U256 rd = U256::MulMod(r, key.scalar(), kN);
    U256 s = U256::MulMod(kinv, U256::AddMod(z, rd, kN), kN);
    if (s.IsZero()) return false;
    sig.r = r;
    sig.s = s;
    y_odd = r_point.y.Bit(0);
    return true;
  });

  // Enforce low-s (Ethereum/BIP-62); flipping s mirrors R, flipping parity.
  static const U256 kHalfN = kN >> 1;
  uint8_t recid = y_odd ? 1 : 0;
  if (sig.s > kHalfN) {
    sig.s = kN - sig.s;
    recid ^= 1;
  }
  sig.v = static_cast<uint8_t>(27 + recid);
  return sig;
}

bool Verify(const Hash32& digest, const Signature& sig,
            const AffinePoint& pub) {
  if (sig.r.IsZero() || sig.r >= kN || sig.s.IsZero() || sig.s >= kN) {
    return false;
  }
  if (!IsOnCurve(pub) || pub.infinity) return false;
  U256 z = U256::FromBigEndianTruncating(BytesView(digest.data(), 32)) % kN;
  U256 sinv = ModInverse(sig.s, kN);
  U256 u1 = U256::MulMod(z, sinv, kN);
  U256 u2 = U256::MulMod(sig.r, sinv, kN);
  Jacobian sum = JacAdd(JacScalarMul(ToJacobian(kG), u1),
                        JacScalarMul(ToJacobian(pub), u2));
  AffinePoint res = ToAffine(sum);
  if (res.infinity) return false;
  return res.x % kN == sig.r;
}

Result<AffinePoint> Recover(const Hash32& digest, uint8_t v, const U256& r,
                            const U256& s) {
  if (v != 27 && v != 28) {
    return Status::VerificationFailed("recovery id must be 27 or 28");
  }
  if (r.IsZero() || r >= kN || s.IsZero() || s >= kN) {
    return Status::VerificationFailed("signature scalar out of range");
  }
  // R candidate: x = r (recid < 2), y parity chosen by v.
  U256 x = r;
  if (x >= kP) return Status::VerificationFailed("r exceeds field prime");
  U256 y2 = FieldAdd(FieldMul(FieldSqr(x), x), U256(7));
  U256 y = FieldSqrt(y2);
  if (FieldSqr(y) != y2) {
    return Status::VerificationFailed("r is not an x-coordinate on the curve");
  }
  bool want_odd = (v == 28);
  if (y.Bit(0) != want_odd) y = FieldNeg(y);
  Jacobian r_point = ToJacobian({x, y, false});

  U256 z = U256::FromBigEndianTruncating(BytesView(digest.data(), 32)) % kN;
  U256 rinv = ModInverse(r, kN);
  // Q = r^{-1} (s*R - z*G)
  U256 u1 = U256::MulMod(kN - z % kN, rinv, kN);  // -z/r mod n
  U256 u2 = U256::MulMod(s, rinv, kN);
  Jacobian q = JacAdd(JacScalarMul(ToJacobian(kG), u1),
                      JacScalarMul(r_point, u2));
  AffinePoint pub = ToAffine(q);
  if (pub.infinity) {
    return Status::VerificationFailed("recovered point at infinity");
  }
  return pub;
}

Result<Address> RecoverAddress(const Hash32& digest, uint8_t v, const U256& r,
                               const U256& s) {
  ONOFF_ASSIGN_OR_RETURN(AffinePoint pub, Recover(digest, v, r, s));
  return PublicKeyToAddress(pub);
}

}  // namespace onoff::secp256k1
