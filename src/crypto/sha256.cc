#include "crypto/sha256.h"

#include <cstring>

namespace onoff {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

struct Sha256State {
  uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

  void Compress(const uint8_t* block) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (uint32_t(block[i * 4]) << 24) | (uint32_t(block[i * 4 + 1]) << 16) |
             (uint32_t(block[i * 4 + 2]) << 8) | uint32_t(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      uint32_t ch = (e & f) ^ ((~e) & g);
      uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
      uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
};

}  // namespace

std::array<uint8_t, 32> Sha256(BytesView data) {
  Sha256State st;
  size_t full_blocks = data.size() / 64;
  for (size_t i = 0; i < full_blocks; ++i) st.Compress(data.data() + i * 64);

  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  uint8_t tail[128] = {0};
  size_t rem = data.size() - full_blocks * 64;
  if (rem > 0) std::memcpy(tail, data.data() + full_blocks * 64, rem);
  tail[rem] = 0x80;
  size_t tail_len = (rem + 1 + 8 <= 64) ? 64 : 128;
  uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 1 - i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  st.Compress(tail);
  if (tail_len == 128) st.Compress(tail + 64);

  std::array<uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(st.h[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(st.h[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(st.h[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(st.h[i]);
  }
  return out;
}

std::array<uint8_t, 32> HmacSha256(BytesView key, BytesView data) {
  std::array<uint8_t, 64> k_block{};
  if (key.size() > 64) {
    auto hashed = Sha256(key);
    std::memcpy(k_block.data(), hashed.data(), 32);
  } else {
    std::memcpy(k_block.data(), key.data(), key.size());
  }

  Bytes inner;
  inner.reserve(64 + data.size());
  for (int i = 0; i < 64; ++i) inner.push_back(k_block[i] ^ 0x36);
  Append(inner, data);
  auto inner_hash = Sha256(inner);

  Bytes outer;
  outer.reserve(64 + 32);
  for (int i = 0; i < 64; ++i) outer.push_back(k_block[i] ^ 0x5c);
  Append(outer, BytesView(inner_hash.data(), inner_hash.size()));
  return Sha256(outer);
}

}  // namespace onoff
