// RIPEMD-160, backing the Ethereum precompile at address 0x3.

#ifndef ONOFFCHAIN_CRYPTO_RIPEMD160_H_
#define ONOFFCHAIN_CRYPTO_RIPEMD160_H_

#include <array>
#include <cstdint>

#include "support/bytes.h"

namespace onoff {

std::array<uint8_t, 20> Ripemd160(BytesView data);

}  // namespace onoff

#endif  // ONOFFCHAIN_CRYPTO_RIPEMD160_H_
