// From-scratch secp256k1 ECDSA: key generation, RFC 6979 deterministic
// signing, verification, and public-key recovery (the primitive behind
// Ethereum's `ecrecover` and the signed off-chain contract copies of the
// paper's protocol).
//
// The implementation favors clarity over constant-time hardening: it is a
// research reproduction, not a wallet. Field arithmetic uses a specialized
// fast reduction for p = 2^256 - 2^32 - 977; scalar arithmetic (mod the group
// order n) uses the generic U256 modular routines, with a divsteps-based
// inverse on the fast backend and binary extended-GCD on the reference one.
//
// Two point-arithmetic backends are compiled in:
//   kFast      — 5x52-limb lazy-reduction field representation for point
//                formulas (magnitude-tracked adds/negates, one reduction
//                per multiply), unrolled comba multiply / dedicated
//                squaring for the serial Fermat inverse and square-root
//                ladders, GLV endomorphism decomposition + wNAF(5) with
//                effective-affine (shared-Z) precomputed odd-multiple
//                tables for variable points, a precomputed 8-bit
//                fixed-base comb table for G (zero doublings), and a
//                divsteps (Bernstein–Yang style) scalar inverse. The GLV
//                constants are self-checked at startup and fall back to
//                plain wNAF on any mismatch.
//   kReference — the original seed implementation preserved verbatim
//                (per-bit double-and-add over schoolbook field ops), kept
//                as the differential-testing oracle.
// Both produce bit-identical results; the backend is a process-global
// switch (kFast by default) so benchmarks and tests can compare them.

#ifndef ONOFFCHAIN_CRYPTO_SECP256K1_H_
#define ONOFFCHAIN_CRYPTO_SECP256K1_H_

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/keccak.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::secp256k1 {

// Curve parameters.
const U256& FieldPrime();   // p
const U256& GroupOrder();   // n

// Which point/field implementation the top-level operations use.
enum class Backend {
  kFast = 0,       // wNAF + tables + addition-chain inverse (default)
  kReference = 1,  // naive double-and-add + binary-GCD inverse
};

// Process-global backend switch. Thread-safe; intended for benchmarks and
// differential tests, not per-call toggling on hot paths.
void SetBackend(Backend backend);
Backend GetBackend();

// RAII backend override for test scopes.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend) : prev_(GetBackend()) {
    SetBackend(backend);
  }
  ~ScopedBackend() { SetBackend(prev_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend prev_;
};

// An affine point; (0,0) with infinity=true is the identity.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  bool operator==(const AffinePoint& o) const {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }
};

// Generator G.
const AffinePoint& Generator();

// Returns true iff the point satisfies y^2 = x^3 + 7 (mod p) or is identity.
bool IsOnCurve(const AffinePoint& pt);

// Group operations (affine API; internally Jacobian).
AffinePoint Add(const AffinePoint& a, const AffinePoint& b);
AffinePoint ScalarMul(const AffinePoint& pt, const U256& scalar);
// k*G, with a fixed-base speedup.
AffinePoint ScalarBaseMul(const U256& k);

// A recoverable ECDSA signature. `v` is the Ethereum-style recovery id:
// 27 + (parity of R.y), matching ethereumjs-util's ecsign output.
struct Signature {
  uint8_t v = 0;
  U256 r;
  U256 s;

  // 65-byte r || s || v serialization.
  Bytes Serialize() const;
  static Result<Signature> Deserialize(BytesView data);

  bool operator==(const Signature& o) const {
    return v == o.v && r == o.r && s == o.s;
  }
};

// A private key is a scalar in [1, n-1].
class PrivateKey {
 public:
  // Validates that the scalar is in range.
  static Result<PrivateKey> FromScalar(const U256& d);
  static Result<PrivateKey> FromHex(std::string_view hex);
  // Deterministically derives a test key from a seed string (keccak-based,
  // retried until in range). Handy for examples and fixtures.
  static PrivateKey FromSeed(std::string_view seed);

  const U256& scalar() const { return d_; }
  // Uncompressed public key point.
  AffinePoint PublicKey() const;
  // Ethereum address: low 20 bytes of keccak256(x || y).
  Address EthAddress() const;

 private:
  explicit PrivateKey(const U256& d) : d_(d) {}
  U256 d_;
};

// Converts a public key point to its Ethereum address.
Address PublicKeyToAddress(const AffinePoint& pub);

// SEC1 point serialization: 65-byte uncompressed (0x04 || x || y) or 33-byte
// compressed (0x02/0x03 || x, tag by y parity).
Bytes SerializePoint(const AffinePoint& pt, bool compressed);
// Parses either SEC1 form, validating that the point is on the curve
// (compressed points are decompressed via a square root mod p).
Result<AffinePoint> ParsePoint(BytesView data);

// Signs a 32-byte digest. Deterministic (RFC 6979); produces a low-s
// signature with recovery id, like ethereumjs-util's ecsign.
Result<Signature> Sign(const Hash32& digest, const PrivateKey& key);

// Verifies a (non-recoverable) signature against a known public key.
bool Verify(const Hash32& digest, const Signature& sig,
            const AffinePoint& pub);

// Recovers the signing public key from a recoverable signature. Fails when
// (v, r, s) is inconsistent. This is the exact semantics of the EVM
// `ecrecover` precompile.
Result<AffinePoint> Recover(const Hash32& digest, uint8_t v, const U256& r,
                            const U256& s);

// Convenience: recover straight to an Ethereum address.
Result<Address> RecoverAddress(const Hash32& digest, uint8_t v, const U256& r,
                               const U256& s);

// Field-kernel entry points, exposed for differential tests and
// microbenchmarks only (all operands/results are in [0, p)). The *Fast and
// *Reference pairs must agree bit-for-bit on every input.
namespace internal {
U256 FieldMul(const U256& a, const U256& b);
U256 FieldSqr(const U256& a);                // dedicated squaring kernel
U256 FieldSqrReference(const U256& a);       // FieldMul(a, a)
U256 FieldInvFast(const U256& a);            // Fermat addition chain
U256 FieldInvReference(const U256& a);       // binary extended GCD
U256 FieldSqrtFast(const U256& a);           // a^((p+1)/4) addition chain
U256 FieldSqrtReference(const U256& a);      // generic square-and-multiply
U256 ScalarInvFast(const U256& a);           // divsteps inverse mod n
U256 ScalarInvReference(const U256& a);      // U256 binary GCD mod n
// True when the GLV endomorphism passed its startup self-checks and the
// fast backend is using the split-scalar path (it should always be true;
// exposed so tests can catch a silent fallback).
bool GlvEnabled();
}  // namespace internal

}  // namespace onoff::secp256k1

#endif  // ONOFFCHAIN_CRYPTO_SECP256K1_H_
