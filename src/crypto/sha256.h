// SHA-256 and HMAC-SHA-256.
//
// SHA-256 backs the Ethereum precompile at address 0x2 and the RFC 6979
// deterministic-nonce construction used by the ECDSA signer; HMAC-SHA-256 is
// the PRF inside RFC 6979.

#ifndef ONOFFCHAIN_CRYPTO_SHA256_H_
#define ONOFFCHAIN_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "support/bytes.h"

namespace onoff {

// One-shot SHA-256.
std::array<uint8_t, 32> Sha256(BytesView data);

// HMAC-SHA-256 with arbitrary-length key.
std::array<uint8_t, 32> HmacSha256(BytesView key, BytesView data);

}  // namespace onoff

#endif  // ONOFFCHAIN_CRYPTO_SHA256_H_
