// The EVM execution tracing interface — the equivalent of geth's
// vm.EVMLogger behind debug_traceTransaction. An installed hook observes
// every interpreter step (pc, opcode, gas, depth, stack) and every call
// frame boundary (CALL family, CREATE family, precompiles, plain
// transfers), which is enough to reconstruct structLog records and a
// call-frame tree with per-frame gas attribution.
//
// Cost model: the interpreter pays exactly one pointer test per instruction
// and two per frame when no hook is installed (the same pattern as the
// opcode metrics counters), so tracing-off overhead is one never-taken
// branch.
//
// Implementations live in src/trace/ (StructLogTracer, FrameSpanHook); this
// header keeps the EVM free of any dependency on the tracing layer.

#ifndef ONOFFCHAIN_EVM_TRACE_HOOK_H_
#define ONOFFCHAIN_EVM_TRACE_HOOK_H_

#include <cstdint>
#include <vector>

#include "support/address.h"
#include "support/u256.h"

namespace onoff::evm {

struct ExecResult;

// One interpreter step, observed BEFORE the instruction executes. The gas
// cost of the step is not known yet (for CALL/CREATE it includes the net
// consumption of the whole child frame); consumers derive it from the gas
// value of the next step at the same depth, or from the frame's exit
// gas_left — StructLogTracer does exactly that.
struct StepContext {
  uint64_t pc = 0;
  uint8_t opcode = 0;
  const char* op_name = "";
  // Gas remaining in this frame before the instruction executes.
  uint64_t gas = 0;
  int depth = 0;
  // The frame's full operand stack, bottom first as the interpreter holds
  // it (`stack[stack_size - 1]` is the top). Hooks copy the top-k slice
  // they want and must not retain the pointer past the call.
  const U256* stack = nullptr;
  size_t stack_size = 0;
  size_t memory_size = 0;
};

// One call frame opening. `kind` uses the triggering opcode's mnemonic
// ("CALL", "STATICCALL", "DELEGATECALL", "CALLCODE", "CREATE", "CREATE2")
// or "TRANSFER" / "PRECOMPILE" for frames with no interpreter activation.
struct FrameContext {
  const char* kind = "CALL";
  int depth = 0;
  // The account whose storage the frame mutates (self), the account whose
  // code runs, and the caller.
  Address self;
  Address code_address;
  Address caller;
  U256 value;
  uint64_t gas = 0;
  size_t input_size = 0;
};

class TraceHook {
 public:
  virtual ~TraceHook() = default;

  virtual void OnFrameEnter(const FrameContext& frame) { (void)frame; }
  // `gas_used` is the frame's total consumption (children included).
  virtual void OnFrameExit(const FrameContext& frame, const ExecResult& result,
                           uint64_t gas_used) {
    (void)frame;
    (void)result;
    (void)gas_used;
  }
  virtual void OnStep(const StepContext& step) { (void)step; }
};

}  // namespace onoff::evm

#endif  // ONOFFCHAIN_EVM_TRACE_HOOK_H_
