// The EVM interpreter: executes contract bytecode against a StateView
// (normally the WorldState, or a speculative overlay of it) with
// the Byzantium gas schedule, message calls, contract creation and the
// standard precompiles. This is the "miners execute the contract" substrate
// that the on/off-chain protocol runs on — and also what participants use
// locally to execute the off-chain contract without miners.

#ifndef ONOFFCHAIN_EVM_EVM_H_
#define ONOFFCHAIN_EVM_EVM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "crypto/keccak.h"
#include "state/state_view.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/u256.h"

namespace onoff::evm {

class TraceHook;  // evm/trace_hook.h

// Block-level environment visible to contracts (TIMESTAMP, NUMBER, ...).
struct BlockContext {
  uint64_t number = 0;
  uint64_t timestamp = 0;
  Address coinbase;
  uint64_t gas_limit = 8'000'000;
  U256 difficulty;
  // Hash provider for BLOCKHASH; may be empty (returns zero hashes).
  std::function<Hash32(uint64_t)> block_hash;
};

// Transaction-level environment (ORIGIN, GASPRICE).
struct TxContext {
  Address origin;
  U256 gas_price;
};

// An emitted LOG record (Ethereum event).
struct LogEntry {
  Address address;
  std::vector<U256> topics;
  Bytes data;
};

// How a frame ended.
enum class Outcome {
  kSuccess,
  kRevert,             // REVERT: state rolled back, remaining gas returned
  kOutOfGas,
  kInvalidInstruction,
  kStackUnderflow,
  kStackOverflow,
  kBadJumpDestination,
  kStaticViolation,    // state mutation inside STATICCALL
  kCallDepthExceeded,
  kInsufficientBalance,
  kCodeSizeExceeded,   // EIP-170 deploy limit
};

const char* OutcomeToString(Outcome outcome);

// Which interpreter loop executes frames (see evm/interp.h):
//  - kSwitch:         the reference per-instruction switch loop;
//  - kThreadedNoFuse: cached code analysis + threaded dispatch, one cell
//                     per instruction;
//  - kThreaded:       threaded dispatch with superinstruction fusion
//                     (PUSH+JUMP, PUSH+JUMPI, DUP+MLOAD, PUSH+binop).
// All three are observably identical (outcome, gas, state, logs, metrics);
// structLog tracing forces the switch loop for the traced frames since the
// hook observes every step.
enum class DispatchMode {
  kSwitch,
  kThreadedNoFuse,
  kThreaded,
};

// Process-wide default for newly constructed Evm instances (kThreaded).
DispatchMode DefaultDispatchMode();
void SetDefaultDispatchMode(DispatchMode mode);

// Parses "switch" / "threaded-nofuse" / "threaded"; false on anything else.
bool ParseDispatchMode(const std::string& name, DispatchMode* out);
const char* DispatchModeToString(DispatchMode mode);

struct ExecResult {
  Outcome outcome = Outcome::kSuccess;
  // RETURN payload on success, REVERT reason otherwise.
  Bytes output;
  uint64_t gas_left = 0;
  // SSTORE/SELFDESTRUCT refund accumulated by this execution (the caller
  // caps it at gas_used/2 per the Yellow Paper).
  uint64_t refund = 0;
  std::vector<LogEntry> logs;
  // Address of the deployed contract (Create only).
  Address created;

  bool ok() const { return outcome == Outcome::kSuccess; }
};

// A message call request.
struct CallMessage {
  Address caller;
  Address to;
  U256 value;
  Bytes data;
  uint64_t gas = 0;
  bool is_static = false;
};

class Evm {
 public:
  Evm(state::StateView* world, BlockContext block, TxContext tx)
      : world_(world),
        block_(std::move(block)),
        tx_(std::move(tx)),
        dispatch_mode_(DefaultDispatchMode()) {}

  // Executes a message call (including plain value transfers and
  // precompiles). State changes are journaled and reverted on failure.
  ExecResult Call(const CallMessage& msg);

  // Deploys a contract: runs `init_code`, deposits its return value as the
  // account code, charging 200 gas/byte.
  ExecResult Create(const Address& caller, const U256& value,
                    const Bytes& init_code, uint64_t gas);

  // CREATE address derivation: keccak256(rlp([creator, nonce]))[12..].
  static Address ContractAddress(const Address& creator, uint64_t nonce);
  // CREATE2 address derivation: keccak256(0xff ++ creator ++ salt ++
  // keccak(init_code))[12..].
  static Address Create2Address(const Address& creator, const U256& salt,
                                const Bytes& init_code);

  const BlockContext& block() const { return block_; }
  state::StateView* world() { return world_; }

  // Installs an execution tracer (see evm/trace_hook.h). The hook observes
  // every interpreter step and call-frame boundary for the lifetime of this
  // Evm; pass nullptr to detach. Not owned.
  void set_trace_hook(TraceHook* hook) { trace_hook_ = hook; }
  TraceHook* trace_hook() const { return trace_hook_; }

  // Selects the interpreter loop for frames run by this Evm (defaults to
  // the process-wide DefaultDispatchMode()).
  void set_dispatch_mode(DispatchMode mode) { dispatch_mode_ = mode; }
  DispatchMode dispatch_mode() const { return dispatch_mode_; }

 private:
  friend class Interpreter;

  ExecResult CallInternal(const CallMessage& msg, int depth);
  ExecResult CreateInternal(const Address& caller, const U256& value,
                            const Bytes& init_code, uint64_t gas,
                            const U256* salt, int depth);

  state::StateView* world_;
  BlockContext block_;
  TxContext tx_;
  TraceHook* trace_hook_ = nullptr;
  DispatchMode dispatch_mode_;
};

}  // namespace onoff::evm

#endif  // ONOFFCHAIN_EVM_EVM_H_
