#include "evm/precompiles.h"

#include "crypto/keccak.h"
#include "crypto/ripemd160.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "evm/gas.h"
#include "support/u256.h"

namespace onoff::evm {

namespace {

// Pads/truncates input to exactly `n` bytes (precompile convention: missing
// input reads as zeros).
Bytes PadTo(BytesView input, size_t n) {
  Bytes out(n, 0);
  size_t take = std::min(input.size(), n);
  std::copy(input.begin(), input.begin() + take, out.begin());
  return out;
}

PrecompileResult Ecrecover(BytesView input, uint64_t gas) {
  PrecompileResult res;
  res.gas_cost = gas::kEcrecover;
  if (gas < res.gas_cost) return res;  // out of gas
  res.success = true;                  // ecrecover never halts; bad input
                                       // returns empty output
  Bytes in = PadTo(input, 128);
  Hash32 digest;
  std::copy(in.begin(), in.begin() + 32, digest.begin());
  U256 v = U256::FromBigEndianTruncating(BytesView(in.data() + 32, 32));
  U256 r = U256::FromBigEndianTruncating(BytesView(in.data() + 64, 32));
  U256 s = U256::FromBigEndianTruncating(BytesView(in.data() + 96, 32));
  if (!v.FitsUint64() || (v.low64() != 27 && v.low64() != 28)) return res;
  auto addr = secp256k1::RecoverAddress(digest, static_cast<uint8_t>(v.low64()),
                                        r, s);
  if (!addr.ok()) return res;
  // Left-pad the 20-byte address to a 32-byte word.
  res.output = addr->ToWord().ToBytes();
  return res;
}

PrecompileResult Sha256Pre(BytesView input, uint64_t gas) {
  PrecompileResult res;
  res.gas_cost = gas::kSha256Base + gas::kSha256Word * gas::ToWords(input.size());
  if (gas < res.gas_cost) return res;
  res.success = true;
  auto h = Sha256(input);
  res.output.assign(h.begin(), h.end());
  return res;
}

PrecompileResult Ripemd160Pre(BytesView input, uint64_t gas) {
  PrecompileResult res;
  res.gas_cost =
      gas::kRipemd160Base + gas::kRipemd160Word * gas::ToWords(input.size());
  if (gas < res.gas_cost) return res;
  res.success = true;
  auto h = Ripemd160(input);
  // Left-padded to 32 bytes.
  res.output.assign(32, 0);
  std::copy(h.begin(), h.end(), res.output.begin() + 12);
  return res;
}

PrecompileResult Identity(BytesView input, uint64_t gas) {
  PrecompileResult res;
  res.gas_cost =
      gas::kIdentityBase + gas::kIdentityWord * gas::ToWords(input.size());
  if (gas < res.gas_cost) return res;
  res.success = true;
  res.output.assign(input.begin(), input.end());
  return res;
}

// Returns 0 if not a precompile, else the precompile index.
int PrecompileIndex(const Address& addr) {
  const auto& b = addr.bytes();
  for (size_t i = 0; i + 1 < b.size(); ++i) {
    if (b[i] != 0) return 0;
  }
  return (b[19] >= 1 && b[19] <= 4) ? b[19] : 0;
}

}  // namespace

bool IsPrecompile(const Address& addr) { return PrecompileIndex(addr) != 0; }

std::optional<PrecompileResult> RunPrecompile(const Address& addr,
                                              BytesView input, uint64_t gas) {
  switch (PrecompileIndex(addr)) {
    case 1:
      return Ecrecover(input, gas);
    case 2:
      return Sha256Pre(input, gas);
    case 3:
      return Ripemd160Pre(input, gas);
    case 4:
      return Identity(input, gas);
    default:
      return std::nullopt;
  }
}

}  // namespace onoff::evm
