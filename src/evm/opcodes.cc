#include "evm/opcodes.h"

#include <array>
#include <string>

namespace onoff::evm {

namespace {

struct Entry {
  uint8_t op;
  std::string_view name;
  uint8_t in;
  uint8_t out;
};

constexpr Entry kEntries[] = {
    {0x00, "STOP", 0, 0},       {0x01, "ADD", 2, 1},
    {0x02, "MUL", 2, 1},        {0x03, "SUB", 2, 1},
    {0x04, "DIV", 2, 1},        {0x05, "SDIV", 2, 1},
    {0x06, "MOD", 2, 1},        {0x07, "SMOD", 2, 1},
    {0x08, "ADDMOD", 3, 1},     {0x09, "MULMOD", 3, 1},
    {0x0a, "EXP", 2, 1},        {0x0b, "SIGNEXTEND", 2, 1},
    {0x10, "LT", 2, 1},         {0x11, "GT", 2, 1},
    {0x12, "SLT", 2, 1},        {0x13, "SGT", 2, 1},
    {0x14, "EQ", 2, 1},         {0x15, "ISZERO", 1, 1},
    {0x16, "AND", 2, 1},        {0x17, "OR", 2, 1},
    {0x18, "XOR", 2, 1},        {0x19, "NOT", 1, 1},
    {0x1a, "BYTE", 2, 1},       {0x1b, "SHL", 2, 1},
    {0x1c, "SHR", 2, 1},        {0x1d, "SAR", 2, 1},
    {0x20, "SHA3", 2, 1},       {0x30, "ADDRESS", 0, 1},
    {0x31, "BALANCE", 1, 1},    {0x32, "ORIGIN", 0, 1},
    {0x33, "CALLER", 0, 1},     {0x34, "CALLVALUE", 0, 1},
    {0x35, "CALLDATALOAD", 1, 1},
    {0x36, "CALLDATASIZE", 0, 1},
    {0x37, "CALLDATACOPY", 3, 0},
    {0x38, "CODESIZE", 0, 1},   {0x39, "CODECOPY", 3, 0},
    {0x3a, "GASPRICE", 0, 1},   {0x3b, "EXTCODESIZE", 1, 1},
    {0x3c, "EXTCODECOPY", 4, 0},
    {0x3d, "RETURNDATASIZE", 0, 1},
    {0x3e, "RETURNDATACOPY", 3, 0},
    {0x40, "BLOCKHASH", 1, 1},  {0x41, "COINBASE", 0, 1},
    {0x42, "TIMESTAMP", 0, 1},  {0x43, "NUMBER", 0, 1},
    {0x44, "DIFFICULTY", 0, 1}, {0x45, "GASLIMIT", 0, 1},
    {0x50, "POP", 1, 0},        {0x51, "MLOAD", 1, 1},
    {0x52, "MSTORE", 2, 0},     {0x53, "MSTORE8", 2, 0},
    {0x54, "SLOAD", 1, 1},      {0x55, "SSTORE", 2, 0},
    {0x56, "JUMP", 1, 0},       {0x57, "JUMPI", 2, 0},
    {0x58, "PC", 0, 1},         {0x59, "MSIZE", 0, 1},
    {0x5a, "GAS", 0, 1},        {0x5b, "JUMPDEST", 0, 0},
    {0xf0, "CREATE", 3, 1},     {0xf1, "CALL", 7, 1},
    {0xf2, "CALLCODE", 7, 1},   {0xf3, "RETURN", 2, 0},
    {0xf4, "DELEGATECALL", 6, 1},
    {0xf5, "CREATE2", 4, 1},
    {0xfa, "STATICCALL", 6, 1},
    {0xfd, "REVERT", 2, 0},     {0xfe, "INVALID", 0, 0},
    {0xff, "SELFDESTRUCT", 1, 0},
};

struct Table {
  std::array<OpcodeInfo, 256> info;
  // Stable storage for generated PUSH/DUP/SWAP/LOG names.
  std::array<std::string, 256> names;

  Table() {
    for (int i = 0; i < 256; ++i) {
      info[i] = OpcodeInfo{"INVALID", 0, 0, 0, false, false};
    }
    for (const Entry& e : kEntries) {
      info[e.op] = OpcodeInfo{e.name, e.in, e.out, 0, true, false};
    }
    // INVALID is a defined opcode (0xfe) that always aborts.
    info[0xfe].defined = true;
    // Opcodes after which control never reaches the next byte.
    for (uint8_t op : {0x00, 0x56, 0xf3, 0xfd, 0xfe, 0xff}) {
      info[op].terminator = true;
    }
    for (int n = 1; n <= 32; ++n) {
      uint8_t op = static_cast<uint8_t>(0x5f + n);
      names[op] = "PUSH" + std::to_string(n);
      info[op] =
          OpcodeInfo{names[op], 0, 1, static_cast<uint8_t>(n), true, false};
    }
    for (int n = 1; n <= 16; ++n) {
      uint8_t op = static_cast<uint8_t>(0x7f + n);
      names[op] = "DUP" + std::to_string(n);
      info[op] = OpcodeInfo{names[op], static_cast<uint8_t>(n),
                            static_cast<uint8_t>(n + 1), 0, true, false};
      op = static_cast<uint8_t>(0x8f + n);
      names[op] = "SWAP" + std::to_string(n);
      info[op] = OpcodeInfo{names[op], static_cast<uint8_t>(n + 1),
                            static_cast<uint8_t>(n + 1), 0, true, false};
    }
    for (int n = 0; n <= 4; ++n) {
      uint8_t op = static_cast<uint8_t>(0xa0 + n);
      names[op] = "LOG" + std::to_string(n);
      info[op] =
          OpcodeInfo{names[op], static_cast<uint8_t>(n + 2), 0, 0, true, false};
    }
  }
};

const Table& GetTable() {
  static const Table& table = *new Table();
  return table;
}

}  // namespace

const OpcodeInfo& GetOpcodeInfo(uint8_t op) { return GetTable().info[op]; }

std::optional<uint8_t> OpcodeFromName(std::string_view name) {
  const Table& table = GetTable();
  for (int i = 0; i < 256; ++i) {
    if (table.info[i].defined && table.info[i].name == name) {
      return static_cast<uint8_t>(i);
    }
  }
  return std::nullopt;
}

}  // namespace onoff::evm
