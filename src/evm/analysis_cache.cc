#include "evm/analysis_cache.h"

#include <cassert>
#include <string>

#include "evm/gas.h"
#include "evm/opcodes.h"
#include "obs/metrics.h"

namespace onoff::evm {

namespace {

// Stack requirements above this can never be met, so clamping to it keeps
// the u16 fields safe while preserving "always fails the entry check".
constexpr long kStackSentinel = static_cast<long>(gas::kMaxStack) + 1;

Handler HandlerFor(uint8_t op) {
  if (IsPush(op)) return Handler::PUSH;
  if (IsDup(op)) return Handler::DUP;
  if (IsSwap(op)) return Handler::SWAP;
  if (IsLog(op)) return Handler::LOG;
  switch (static_cast<Opcode>(op)) {
#define ONOFF_EVM_H_MAP(name) \
  case Opcode::name:          \
    return Handler::name;
    ONOFF_EVM_H_MAP(STOP)
    ONOFF_EVM_H_MAP(ADD)
    ONOFF_EVM_H_MAP(MUL)
    ONOFF_EVM_H_MAP(SUB)
    ONOFF_EVM_H_MAP(DIV)
    ONOFF_EVM_H_MAP(SDIV)
    ONOFF_EVM_H_MAP(MOD)
    ONOFF_EVM_H_MAP(SMOD)
    ONOFF_EVM_H_MAP(ADDMOD)
    ONOFF_EVM_H_MAP(MULMOD)
    ONOFF_EVM_H_MAP(EXP)
    ONOFF_EVM_H_MAP(SIGNEXTEND)
    ONOFF_EVM_H_MAP(LT)
    ONOFF_EVM_H_MAP(GT)
    ONOFF_EVM_H_MAP(SLT)
    ONOFF_EVM_H_MAP(SGT)
    ONOFF_EVM_H_MAP(EQ)
    ONOFF_EVM_H_MAP(ISZERO)
    ONOFF_EVM_H_MAP(AND)
    ONOFF_EVM_H_MAP(OR)
    ONOFF_EVM_H_MAP(XOR)
    ONOFF_EVM_H_MAP(NOT)
    ONOFF_EVM_H_MAP(BYTE)
    ONOFF_EVM_H_MAP(SHL)
    ONOFF_EVM_H_MAP(SHR)
    ONOFF_EVM_H_MAP(SAR)
    ONOFF_EVM_H_MAP(SHA3)
    ONOFF_EVM_H_MAP(ADDRESS)
    ONOFF_EVM_H_MAP(BALANCE)
    ONOFF_EVM_H_MAP(ORIGIN)
    ONOFF_EVM_H_MAP(CALLER)
    ONOFF_EVM_H_MAP(CALLVALUE)
    ONOFF_EVM_H_MAP(CALLDATALOAD)
    ONOFF_EVM_H_MAP(CALLDATASIZE)
    ONOFF_EVM_H_MAP(CALLDATACOPY)
    ONOFF_EVM_H_MAP(CODESIZE)
    ONOFF_EVM_H_MAP(CODECOPY)
    ONOFF_EVM_H_MAP(GASPRICE)
    ONOFF_EVM_H_MAP(EXTCODESIZE)
    ONOFF_EVM_H_MAP(EXTCODECOPY)
    ONOFF_EVM_H_MAP(RETURNDATASIZE)
    ONOFF_EVM_H_MAP(RETURNDATACOPY)
    ONOFF_EVM_H_MAP(BLOCKHASH)
    ONOFF_EVM_H_MAP(COINBASE)
    ONOFF_EVM_H_MAP(TIMESTAMP)
    ONOFF_EVM_H_MAP(NUMBER)
    ONOFF_EVM_H_MAP(DIFFICULTY)
    ONOFF_EVM_H_MAP(GASLIMIT)
    ONOFF_EVM_H_MAP(POP)
    ONOFF_EVM_H_MAP(MLOAD)
    ONOFF_EVM_H_MAP(MSTORE)
    ONOFF_EVM_H_MAP(MSTORE8)
    ONOFF_EVM_H_MAP(SLOAD)
    ONOFF_EVM_H_MAP(SSTORE)
    ONOFF_EVM_H_MAP(JUMP)
    ONOFF_EVM_H_MAP(JUMPI)
    ONOFF_EVM_H_MAP(PC)
    ONOFF_EVM_H_MAP(MSIZE)
    ONOFF_EVM_H_MAP(GAS)
    ONOFF_EVM_H_MAP(CREATE)
    ONOFF_EVM_H_MAP(CALL)
    ONOFF_EVM_H_MAP(CALLCODE)
    ONOFF_EVM_H_MAP(RETURN)
    ONOFF_EVM_H_MAP(DELEGATECALL)
    ONOFF_EVM_H_MAP(CREATE2)
    ONOFF_EVM_H_MAP(STATICCALL)
    ONOFF_EVM_H_MAP(REVERT)
    ONOFF_EVM_H_MAP(SELFDESTRUCT)
#undef ONOFF_EVM_H_MAP
    default:
      return Handler::INVALID;
  }
}

// The fixed cost the switch interpreter charges via one UseGas for
// "simple" ops. Checkpoint ops charge themselves in their handlers, so
// they never route through here (returning 0 keeps that invariant even if
// they did).
uint64_t StaticCost(uint8_t op) {
  if (IsPush(op) || IsDup(op) || IsSwap(op)) return gas::kVeryLow;
  switch (static_cast<Opcode>(op)) {
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::LT:
    case Opcode::GT:
    case Opcode::SLT:
    case Opcode::SGT:
    case Opcode::EQ:
    case Opcode::ISZERO:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::NOT:
    case Opcode::BYTE:
    case Opcode::SHL:
    case Opcode::SHR:
    case Opcode::SAR:
    case Opcode::CALLDATALOAD:
      return gas::kVeryLow;
    case Opcode::MUL:
    case Opcode::DIV:
    case Opcode::SDIV:
    case Opcode::MOD:
    case Opcode::SMOD:
    case Opcode::SIGNEXTEND:
      return gas::kLow;
    case Opcode::ADDMOD:
    case Opcode::MULMOD:
    case Opcode::JUMP:
      return gas::kMid;
    case Opcode::JUMPI:
      return gas::kHigh;
    case Opcode::ADDRESS:
    case Opcode::ORIGIN:
    case Opcode::CALLER:
    case Opcode::CALLVALUE:
    case Opcode::CALLDATASIZE:
    case Opcode::CODESIZE:
    case Opcode::GASPRICE:
    case Opcode::RETURNDATASIZE:
    case Opcode::COINBASE:
    case Opcode::TIMESTAMP:
    case Opcode::NUMBER:
    case Opcode::DIFFICULTY:
    case Opcode::GASLIMIT:
    case Opcode::POP:
    case Opcode::PC:
    case Opcode::MSIZE:
      return gas::kBase;
    case Opcode::BALANCE:
      return gas::kBalance;
    case Opcode::EXTCODESIZE:
      return gas::kExtCode;
    case Opcode::SLOAD:
      return gas::kSload;
    case Opcode::BLOCKHASH:
      return gas::kBlockhash;
    case Opcode::JUMPDEST:
      return gas::kJumpdest;
    default:
      return 0;
  }
}

// Ops whose handler must run with the exact gas the switch interpreter
// would have at that pc: they observe gas (GAS, CALL-family forwarding),
// charge dynamic gas, or can fail for a non-gas reason mid-block.
bool IsCheckpoint(uint8_t op) {
  if (IsLog(op)) return true;
  switch (static_cast<Opcode>(op)) {
    case Opcode::SHA3:
    case Opcode::CALLDATACOPY:
    case Opcode::CODECOPY:
    case Opcode::EXTCODECOPY:
    case Opcode::RETURNDATACOPY:
    case Opcode::EXP:
    case Opcode::MLOAD:
    case Opcode::MSTORE:
    case Opcode::MSTORE8:
    case Opcode::SSTORE:
    case Opcode::GAS:
    case Opcode::CREATE:
    case Opcode::CREATE2:
    case Opcode::CALL:
    case Opcode::CALLCODE:
    case Opcode::DELEGATECALL:
    case Opcode::STATICCALL:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<bool> AnalyzeJumpdests(BytesView code) {
  std::vector<bool> valid(code.size(), false);
  for (size_t i = 0; i < code.size(); ++i) {
    uint8_t op = code[i];
    if (op == static_cast<uint8_t>(Opcode::JUMPDEST)) {
      valid[i] = true;
    } else if (IsPush(op)) {
      i += PushSize(op);
    }
  }
  return valid;
}

U256 EvalBinop(Handler h, const U256& a, const U256& b) {
  switch (h) {
    case Handler::ADD:
      return a + b;
    case Handler::MUL:
      return a * b;
    case Handler::SUB:
      return a - b;
    case Handler::DIV:
      return a / b;
    case Handler::SDIV:
      return a.SDiv(b);
    case Handler::MOD:
      return a % b;
    case Handler::SMOD:
      return a.SMod(b);
    case Handler::SIGNEXTEND:
      if (a.FitsUint64() && a.low64() < 31) {
        return b.SignExtend(static_cast<unsigned>(a.low64()));
      }
      return b;
    case Handler::LT:
      return U256(a < b ? 1 : 0);
    case Handler::GT:
      return U256(a > b ? 1 : 0);
    case Handler::SLT:
      return U256(a.SLess(b) ? 1 : 0);
    case Handler::SGT:
      return U256(b.SLess(a) ? 1 : 0);
    case Handler::EQ:
      return U256(a == b ? 1 : 0);
    case Handler::AND:
      return a & b;
    case Handler::OR:
      return a | b;
    case Handler::XOR:
      return a ^ b;
    case Handler::BYTE: {
      if (a.FitsUint64() && a.low64() < 32) {
        auto be = b.ToBigEndian();
        return U256(be[a.low64()]);
      }
      return U256();
    }
    case Handler::SHL:
      return a >= U256(256) ? U256() : b << static_cast<unsigned>(a.low64());
    case Handler::SHR:
      return a >= U256(256) ? U256() : b >> static_cast<unsigned>(a.low64());
    case Handler::SAR: {
      unsigned n =
          a >= U256(256) ? 256u : static_cast<unsigned>(a.low64());
      return b.Sar(n);
    }
    default:
      return U256();
  }
}

bool IsFusableBinop(uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::ADD:
    case Opcode::MUL:
    case Opcode::SUB:
    case Opcode::DIV:
    case Opcode::SDIV:
    case Opcode::MOD:
    case Opcode::SMOD:
    case Opcode::SIGNEXTEND:
    case Opcode::LT:
    case Opcode::GT:
    case Opcode::SLT:
    case Opcode::SGT:
    case Opcode::EQ:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::BYTE:
    case Opcode::SHL:
    case Opcode::SHR:
    case Opcode::SAR:
      return true;
    default:
      return false;
  }
}

Handler BinopHandler(uint8_t op) { return HandlerFor(op); }

CodeAnalysis Analyze(const Bytes& code, bool fuse) {
  CodeAnalysis an;
  an.jumpdests = AnalyzeJumpdests(code);
  const size_t n = code.size();
  an.jump_cell.assign(n, -1);

  struct Fix {
    uint32_t cell;
    uint32_t target_pc;
  };
  std::vector<Fix> fixups;

  bool open = false;
  size_t blk = 0;            // current block index
  uint32_t blk_cell = 0;     // its BEGIN_BLOCK cell index
  int64_t charge = -1;       // pending CHARGE cell, -1 = accumulate base_gas
  uint64_t seg_gas = 0;      // static gas of the current segment
  long h = 0, req = 0, maxh = 0;  // running stack height / need / peak

  auto flush_segment = [&]() {
    if (charge < 0) {
      an.blocks[blk].base_gas = seg_gas;
    } else {
      if (seg_gas > 0xffffffffull) an.switch_only = true;
      an.cells[static_cast<size_t>(charge)].imm =
          static_cast<uint32_t>(seg_gas);
    }
    seg_gas = 0;
  };

  auto close_block = [&]() {
    if (!open) return;
    flush_segment();
    CodeBlock& b = an.blocks[blk];
    b.ops_count = static_cast<uint32_t>(an.ops.size()) - b.ops_begin;
    b.stack_req = static_cast<uint16_t>(
        req > kStackSentinel ? kStackSentinel : (req < 0 ? 0 : req));
    b.stack_max = static_cast<uint16_t>(
        maxh > kStackSentinel ? kStackSentinel : (maxh < 0 ? 0 : maxh));
    // Aggregate (opcode, count) pairs; blocks see few distinct opcodes so
    // the linear inner scan stays cheap.
    b.agg_begin = static_cast<uint32_t>(an.agg.size());
    for (size_t i = b.ops_begin; i < an.ops.size(); ++i) {
      uint8_t op = an.ops[i];
      bool found = false;
      for (size_t j = b.agg_begin; j < an.agg.size(); ++j) {
        if (an.agg[j].first == op) {
          ++an.agg[j].second;
          found = true;
          break;
        }
      }
      if (!found) an.agg.emplace_back(op, 1u);
    }
    b.agg_end = static_cast<uint32_t>(an.agg.size());
    open = false;
  };

  auto open_block = [&](size_t at_pc) {
    close_block();
    blk = an.blocks.size();
    an.blocks.emplace_back();
    CodeBlock& b = an.blocks.back();
    b.start_pc = static_cast<uint32_t>(at_pc);
    b.ops_begin = static_cast<uint32_t>(an.ops.size());
    h = req = maxh = 0;
    charge = -1;
    seg_gas = 0;
    blk_cell = static_cast<uint32_t>(an.cells.size());
    CodeCell c;
    c.op = static_cast<uint8_t>(Handler::BEGIN_BLOCK);
    c.imm = static_cast<uint32_t>(blk);
    c.pc = static_cast<uint32_t>(at_pc);
    an.cells.push_back(c);
    open = true;
  };

  // Records one original opcode: counters list + stack accounting.
  auto account = [&](uint8_t byte) {
    an.ops.push_back(byte);
    const OpcodeInfo& info = GetOpcodeInfo(byte);
    if (info.defined) {
      long need = static_cast<long>(info.stack_in);
      if (need - h > req) req = need - h;
      h += static_cast<long>(info.stack_out) - need;
      if (h > maxh) maxh = h;
    }
  };

  auto emit = [&](Handler hd, uint32_t imm, size_t pc, uint8_t arg) {
    CodeCell c;
    c.op = static_cast<uint8_t>(hd);
    c.imm = imm;
    c.pc = static_cast<uint32_t>(pc);
    c.arg = arg;
    c.ops_end =
        static_cast<uint32_t>(an.ops.size()) - an.blocks[blk].ops_begin;
    an.cells.push_back(c);
    return static_cast<uint32_t>(an.cells.size() - 1);
  };

  // Decodes PUSHn immediate data, zero-padded past the end of code.
  auto push_value = [&](size_t pc, int size) {
    U256 v;
    for (int i = 0; i < size; ++i) {
      uint8_t b = pc + 1 + static_cast<size_t>(i) < n
                      ? code[pc + 1 + static_cast<size_t>(i)]
                      : 0;
      v = (v << 8) | U256(b);
    }
    return v;
  };

  auto pool_index = [&](const U256& v) {
    an.pool.push_back(v);
    return static_cast<uint32_t>(an.pool.size() - 1);
  };

  size_t pc = 0;
  while (pc < n) {
    uint8_t byte = code[pc];
    if (byte == static_cast<uint8_t>(Opcode::JUMPDEST)) {
      open_block(pc);  // a jump target always begins a fresh block
      an.jump_cell[pc] = static_cast<int32_t>(blk_cell);
      account(byte);
      seg_gas += gas::kJumpdest;
      ++pc;
      continue;
    }
    if (!open) open_block(pc);
    const OpcodeInfo& info = GetOpcodeInfo(byte);
    if (!info.defined) {
      account(byte);
      emit(Handler::INVALID, 0, pc, 0);
      close_block();
      ++pc;
      continue;
    }
    if (IsPush(byte)) {
      int sz = PushSize(byte);
      size_t after = pc + 1 + static_cast<size_t>(sz);
      U256 v = push_value(pc, sz);
      if (fuse && after < n) {
        uint8_t b2 = code[after];
        if (b2 == static_cast<uint8_t>(Opcode::JUMP)) {
          account(byte);
          account(b2);
          seg_gas += gas::kVeryLow + gas::kMid;
          bool ok = v.FitsUint64() && v.low64() < n && an.jumpdests[v.low64()];
          if (ok) {
            uint32_t ci = emit(Handler::PUSH_JUMP, 0, pc, 0);
            fixups.push_back({ci, static_cast<uint32_t>(v.low64())});
          } else {
            emit(Handler::PUSH_JUMP_BAD, 0, pc, 0);
          }
          close_block();
          pc = after + 1;
          continue;
        }
        if (b2 == static_cast<uint8_t>(Opcode::JUMPI)) {
          account(byte);
          account(b2);
          seg_gas += gas::kVeryLow + gas::kHigh;
          bool ok = v.FitsUint64() && v.low64() < n && an.jumpdests[v.low64()];
          uint32_t ci = emit(
              ok ? Handler::PUSH_JUMPI : Handler::PUSH_JUMPI_BAD, 0, pc, 0);
          if (ok) fixups.push_back({ci, static_cast<uint32_t>(v.low64())});
          close_block();  // the false branch falls into the next block
          pc = after + 1;
          continue;
        }
        if (IsPush(b2)) {
          int sz2 = PushSize(b2);
          size_t after2 = after + 1 + static_cast<size_t>(sz2);
          if (after2 < n && IsFusableBinop(code[after2])) {
            uint8_t b3 = code[after2];
            U256 v2 = push_value(after, sz2);
            account(byte);
            account(b2);
            account(b3);
            seg_gas += 2 * gas::kVeryLow + StaticCost(b3);
            // The second push is on top, so it binds to the switch's
            // first-popped operand.
            U256 folded = EvalBinop(HandlerFor(b3), v2, v);
            emit(Handler::PUSH, pool_index(folded), pc, 0);
            pc = after2 + 1;
            continue;
          }
        }
        if (IsFusableBinop(b2)) {
          account(byte);
          account(b2);
          seg_gas += gas::kVeryLow + StaticCost(b2);
          emit(Handler::PUSH_BINOP, pool_index(v), pc,
               static_cast<uint8_t>(HandlerFor(b2)));
          pc = after + 1;
          continue;
        }
      }
      account(byte);
      seg_gas += gas::kVeryLow;
      emit(Handler::PUSH, pool_index(v), pc, 0);
      pc = after;
      continue;
    }
    if (IsDup(byte)) {
      if (fuse && pc + 1 < n &&
          code[pc + 1] == static_cast<uint8_t>(Opcode::MLOAD)) {
        account(byte);
        account(code[pc + 1]);
        seg_gas += gas::kVeryLow;  // the DUP; MLOAD charges itself
        flush_segment();
        emit(Handler::DUP_MLOAD, 0, pc,
             static_cast<uint8_t>(DupDepth(byte)));
        charge = emit(Handler::CHARGE, 0, pc + 2, 0);
        pc += 2;
        continue;
      }
      account(byte);
      seg_gas += gas::kVeryLow;
      emit(Handler::DUP, 0, pc, static_cast<uint8_t>(DupDepth(byte)));
      ++pc;
      continue;
    }
    if (IsSwap(byte)) {
      account(byte);
      seg_gas += gas::kVeryLow;
      emit(Handler::SWAP, 0, pc, static_cast<uint8_t>(SwapDepth(byte)));
      ++pc;
      continue;
    }
    if (IsLog(byte)) {
      account(byte);
      flush_segment();
      emit(Handler::LOG, 0, pc, static_cast<uint8_t>(LogTopics(byte)));
      charge = emit(Handler::CHARGE, 0, pc + 1, 0);
      ++pc;
      continue;
    }
    account(byte);
    if (IsCheckpoint(byte)) {
      flush_segment();
      emit(HandlerFor(byte), 0, pc, 0);
      charge = emit(Handler::CHARGE, 0, pc + 1, 0);
      ++pc;
      continue;
    }
    seg_gas += StaticCost(byte);
    emit(HandlerFor(byte), 0, pc, 0);
    if (info.terminator || byte == static_cast<uint8_t>(Opcode::JUMPI)) {
      close_block();
    }
    ++pc;
  }
  close_block();

  // Falling off the end of code (including a trailing JUMPI's false
  // branch) halts with success without executing anything further.
  {
    CodeCell c;
    c.op = static_cast<uint8_t>(Handler::IMPLICIT_STOP);
    c.pc = static_cast<uint32_t>(n);
    c.ops_end = an.blocks.empty() ? 0 : an.blocks.back().ops_count;
    an.cells.push_back(c);
  }

  for (const Fix& f : fixups) {
    assert(an.jump_cell[f.target_pc] >= 0);
    an.cells[f.cell].imm = static_cast<uint32_t>(an.jump_cell[f.target_pc]);
  }
  return an;
}

CodeAnalysisCache& CodeAnalysisCache::Global() {
  static CodeAnalysisCache cache;
  return cache;
}

std::shared_ptr<const CodeAnalysis> CodeAnalysisCache::Get(
    const Hash32& code_hash, const Bytes& code, bool fuse) {
  return Get(code_hash, BytesView(code), fuse);
}

std::shared_ptr<const CodeAnalysis> CodeAnalysisCache::Get(
    const Hash32& code_hash, BytesView code, bool fuse) {
  static obs::Counter* hits = obs::GetCounterOrNull("evm.analysis_cache.hits");
  static obs::Counter* misses =
      obs::GetCounterOrNull("evm.analysis_cache.misses");
  std::string key(reinterpret_cast<const char*>(code_hash.data()),
                  code_hash.size());
  key.push_back(fuse ? '\1' : '\0');
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      if (hits != nullptr) hits->Inc();
      return it->second;
    }
  }
  if (misses != nullptr) misses->Inc();
  // Build outside the lock: concurrent misses on distinct codes must not
  // serialize behind one another's decode. The copy only happens on this
  // miss path; hits stay allocation-free for BytesView callers.
  auto built = std::make_shared<const CodeAnalysis>(
      Analyze(Bytes(code.begin(), code.end()), fuse));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) return it->second;  // another thread built it first
  if (map_.size() >= kMaxEntries) return built;
  map_.emplace(std::move(key), built);
  return built;
}

size_t CodeAnalysisCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void CodeAnalysisCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

}  // namespace onoff::evm
