#include "evm/interp.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "evm/precompiles.h"

// Computed-goto direct threading needs the GNU labels-as-values extension;
// define ONOFF_EVM_NO_COMPUTED_GOTO to force the portable switch dispatch
// even on GCC/Clang (the differential tests exercise both).
#if !defined(ONOFF_EVM_NO_COMPUTED_GOTO) && \
    (defined(__GNUC__) || defined(__clang__))
#define ONOFF_EVM_COMPUTED_GOTO 1
#else
#define ONOFF_EVM_COMPUTED_GOTO 0
#endif

namespace onoff::evm {

const std::array<obs::Counter*, 256>* OpcodeCounters() {
  static const std::array<obs::Counter*, 256>* const table =
      []() -> const std::array<obs::Counter*, 256>* {
    obs::Registry* registry = obs::Registry::Global();
    if (registry == nullptr) return nullptr;
    auto* t = new std::array<obs::Counter*, 256>();
    for (int op = 0; op < 256; ++op) {
      const OpcodeInfo& info = GetOpcodeInfo(static_cast<uint8_t>(op));
      (*t)[op] = registry->GetCounter("evm.opcode." + std::string(info.name));
    }
    return t;
  }();
  return table;
}

Interpreter::Interpreter(Evm* evm, Address code_addr, Address self,
                         Address caller, U256 value, Bytes data, uint64_t gas,
                         bool is_static, int depth, const Bytes* override_code)
    : evm_(evm),
      world_(evm->world_),
      self_(self),
      caller_(caller),
      value_(value),
      data_(std::move(data)),
      gas_(gas),
      is_static_(is_static),
      depth_(depth),
      hook_(evm->trace_hook_),
      code_addr_(code_addr),
      has_override_(override_code != nullptr) {
  // Own copy: a reentrant call could SELFDESTRUCT this very account and
  // free the state's copy while this frame is still executing.
  code_ = override_code != nullptr ? *override_code
                                   : world_->GetCode(code_addr);
}

bool Interpreter::Expand(const U256& offset, const U256& size,
                         uint64_t* off_out, uint64_t* size_out) {
  if (size.IsZero()) {
    *off_out = 0;
    *size_out = 0;
    return true;
  }
  // Anything beyond 4 GiB would cost more gas than any block has.
  if (!offset.FitsUint64() || !size.FitsUint64() ||
      offset.low64() > (uint64_t{1} << 32) ||
      size.low64() > (uint64_t{1} << 32)) {
    return false;
  }
  uint64_t end = offset.low64() + size.low64();
  uint64_t new_words = gas::ToWords(end);
  uint64_t cur_words = memory_.size() / 32;
  if (new_words > cur_words) {
    uint64_t cost = gas::MemoryCost(new_words) - gas::MemoryCost(cur_words);
    if (!UseGas(cost)) return false;
    memory_.resize(new_words * 32, 0);
  }
  *off_out = offset.low64();
  *size_out = size.low64();
  return true;
}

void Interpreter::StoreWord(uint64_t offset, const U256& v) {
  auto be = v.ToBigEndian();
  std::copy(be.begin(), be.end(), memory_.begin() + offset);
}

void Interpreter::CopyToMemory(BytesView src, const U256& src_off,
                               uint64_t mem_off, uint64_t size) {
  for (uint64_t i = 0; i < size; ++i) {
    U256 pos = src_off + U256(i);
    uint8_t b = 0;
    if (pos.FitsUint64() && pos.low64() < src.size()) b = src[pos.low64()];
    memory_[mem_off + i] = b;
  }
}

ExecResult Interpreter::Run() {
  DispatchMode mode = evm_->dispatch_mode();
  // A step hook observes every instruction, so traced frames always run on
  // the reference loop.
  if (hook_ != nullptr) mode = DispatchMode::kSwitch;
  if (mode == DispatchMode::kSwitch) {
    own_jumpdests_ = AnalyzeJumpdests(code_);
    jumpdests_ = &own_jumpdests_;
    return RunSwitch();
  }
  bool fuse = mode == DispatchMode::kThreaded;
  if (has_override_) {
    // Init code runs once; hashing it to probe the cache would cost about
    // as much as the decode itself.
    analysis_ = std::make_shared<const CodeAnalysis>(Analyze(code_, fuse));
  } else {
    analysis_ = CodeAnalysisCache::Global().Get(
        world_->GetCodeHash(code_addr_), code_, fuse);
  }
  jumpdests_ = &analysis_->jumpdests;
  if (analysis_->switch_only) return RunSwitch();
  return RunThreaded();
}

ExecResult Interpreter::FallbackAt(size_t pc, const CodeBlock* blk,
                                   uint32_t prefix_ops) {
  const std::array<obs::Counter*, 256>* op_counters = OpcodeCounters();
  if (op_counters != nullptr && blk != nullptr) {
    const CodeAnalysis& an = *analysis_;
    for (uint32_t i = 0; i < prefix_ops; ++i) {
      (*op_counters)[an.ops[blk->ops_begin + i]]->Inc();
    }
  }
  pc_ = pc;
  return RunSwitch();
}

// ---------------------------------------------------------------------------
// Reference dispatch: the per-instruction switch loop. Semantic ground
// truth for the threaded loop and the landing pad for its fallbacks (which
// set pc_ and re-enter here mid-frame).
// ---------------------------------------------------------------------------

ExecResult Interpreter::RunSwitch() {
  const std::array<obs::Counter*, 256>* op_counters = OpcodeCounters();
  while (pc_ < code_.size()) {
    uint8_t op_byte = code_[pc_];
    if (op_counters != nullptr) (*op_counters)[op_byte]->Inc();
    const OpcodeInfo& info = GetOpcodeInfo(op_byte);
    if (hook_ != nullptr) {
      // Observed before execution (and before validity checks, so invalid
      // instructions still appear in the structLog, like geth).
      StepContext step;
      step.pc = pc_;
      step.opcode = op_byte;
      step.op_name = info.name.data();
      step.gas = gas_;
      step.depth = depth_;
      step.stack = stack_.data();
      step.stack_size = stack_.size();
      step.memory_size = memory_.size();
      hook_->OnStep(step);
    }
    if (!info.defined || op_byte == static_cast<uint8_t>(Opcode::INVALID)) {
      return Halt(Outcome::kInvalidInstruction);
    }
    if (stack_.size() < info.stack_in) return Halt(Outcome::kStackUnderflow);
    if (stack_.size() - info.stack_in + info.stack_out > gas::kMaxStack) {
      return Halt(Outcome::kStackOverflow);
    }
    Opcode op = static_cast<Opcode>(op_byte);
    size_t next_pc = pc_ + 1 + info.immediate_size;

    // PUSH / DUP / SWAP / LOG families first.
    if (IsPush(op_byte)) {
      if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
      int n = PushSize(op_byte);
      U256 v;
      for (int i = 0; i < n; ++i) {
        uint8_t b = pc_ + 1 + i < code_.size() ? code_[pc_ + 1 + i] : 0;
        v = (v << 8) | U256(b);
      }
      stack_.PushUnsafe(v);
      pc_ = next_pc;
      continue;
    }
    if (op_byte >= 0x80 && op_byte <= 0x8f) {  // DUPn
      if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
      int n = op_byte - 0x7f;
      stack_.PushUnsafe(stack_.Peek(n - 1));
      pc_ = next_pc;
      continue;
    }
    if (op_byte >= 0x90 && op_byte <= 0x9f) {  // SWAPn
      if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
      int n = op_byte - 0x8f;
      std::swap(stack_.Top(), stack_.Peek(n));
      pc_ = next_pc;
      continue;
    }
    if (op_byte >= 0xa0 && op_byte <= 0xa4) {  // LOGn
      if (is_static_) return Halt(Outcome::kStaticViolation);
      int topics = op_byte - 0xa0;
      U256 off = stack_.PopUnsafe();
      U256 size = stack_.PopUnsafe();
      std::vector<U256> topic_vals(topics);
      for (int i = 0; i < topics; ++i) topic_vals[i] = stack_.PopUnsafe();
      uint64_t o = 0, s = 0;
      if (!Expand(off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
      uint64_t cost = gas::kLog + gas::kLogTopic * topics + gas::kLogData * s;
      if (!UseGas(cost)) return Halt(Outcome::kOutOfGas);
      LogEntry entry;
      entry.address = self_;
      entry.topics = std::move(topic_vals);
      entry.data.assign(memory_.begin() + o, memory_.begin() + o + s);
      logs_.push_back(std::move(entry));
      pc_ = next_pc;
      continue;
    }

    switch (op) {
      case Opcode::STOP:
        return Halt(Outcome::kSuccess);

      // ---- Arithmetic / comparison / bitwise ----
      // Binary ops rewrite the new top slot in place; `a` is the
      // first-popped operand, exactly as EvalBinop binds it.
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::LT:
      case Opcode::GT:
      case Opcode::SLT:
      case Opcode::SGT:
      case Opcode::EQ:
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
      case Opcode::BYTE:
      case Opcode::SHL:
      case Opcode::SHR:
      case Opcode::SAR: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a = stack_.PopUnsafe();
        U256& b = stack_.Top();
        b = EvalBinop(BinopHandler(op_byte), a, b);
        break;
      }
      case Opcode::MUL:
      case Opcode::DIV:
      case Opcode::SDIV:
      case Opcode::MOD:
      case Opcode::SMOD:
      case Opcode::SIGNEXTEND: {
        if (!UseGas(gas::kLow)) return Halt(Outcome::kOutOfGas);
        U256 a = stack_.PopUnsafe();
        U256& b = stack_.Top();
        b = EvalBinop(BinopHandler(op_byte), a, b);
        break;
      }
      case Opcode::ADDMOD: {
        if (!UseGas(gas::kMid)) return Halt(Outcome::kOutOfGas);
        U256 a = stack_.PopUnsafe();
        U256 b = stack_.PopUnsafe();
        U256& m = stack_.Top();
        m = U256::AddMod(a, b, m);
        break;
      }
      case Opcode::MULMOD: {
        if (!UseGas(gas::kMid)) return Halt(Outcome::kOutOfGas);
        U256 a = stack_.PopUnsafe();
        U256 b = stack_.PopUnsafe();
        U256& m = stack_.Top();
        m = U256::MulMod(a, b, m);
        break;
      }
      case Opcode::EXP: {
        U256 base = stack_.PopUnsafe();
        U256 exp = stack_.PopUnsafe();
        uint64_t exp_bytes = (exp.BitLength() + 7) / 8;
        if (!UseGas(gas::kExp + gas::kExpByte * exp_bytes)) {
          return Halt(Outcome::kOutOfGas);
        }
        stack_.PushUnsafe(base.Exp(exp));
        break;
      }
      case Opcode::ISZERO: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256& a = stack_.Top();
        a = U256(a.IsZero() ? 1 : 0);
        break;
      }
      case Opcode::NOT: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256& a = stack_.Top();
        a = ~a;
        break;
      }

      case Opcode::SHA3: {
        U256 off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kSha3 + gas::kSha3Word * gas::ToWords(s))) {
          return Halt(Outcome::kOutOfGas);
        }
        Hash32 h = Keccak256(BytesView(memory_.data() + o, s));
        stack_.PushUnsafe(
            U256::FromBigEndianTruncating(BytesView(h.data(), h.size())));
        break;
      }

      // ---- Environment ----
      case Opcode::ADDRESS:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(self_.ToWord());
        break;
      case Opcode::BALANCE: {
        if (!UseGas(gas::kBalance)) return Halt(Outcome::kOutOfGas);
        U256& a = stack_.Top();
        a = world_->GetBalance(Address::FromWord(a));
        break;
      }
      case Opcode::ORIGIN:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(evm_->tx_.origin.ToWord());
        break;
      case Opcode::CALLER:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(caller_.ToWord());
        break;
      case Opcode::CALLVALUE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(value_);
        break;
      case Opcode::CALLDATALOAD: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 off = stack_.PopUnsafe();
        U256 v;
        for (int i = 0; i < 32; ++i) {
          U256 pos = off + U256(static_cast<uint64_t>(i));
          uint8_t b = 0;
          if (pos.FitsUint64() && pos.low64() < data_.size()) {
            b = data_[pos.low64()];
          }
          v = (v << 8) | U256(b);
        }
        stack_.PushUnsafe(v);
        break;
      }
      case Opcode::CALLDATASIZE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(U256(data_.size()));
        break;
      case Opcode::CALLDATACOPY:
      case Opcode::CODECOPY:
      case Opcode::RETURNDATACOPY: {
        U256 mem_off = stack_.PopUnsafe();
        U256 src_off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(mem_off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow + gas::kCopy * gas::ToWords(s))) {
          return Halt(Outcome::kOutOfGas);
        }
        const Bytes& src = op == Opcode::CALLDATACOPY   ? data_
                           : op == Opcode::CODECOPY     ? code_
                                                        : return_data_;
        if (op == Opcode::RETURNDATACOPY) {
          // Reading past RETURNDATA is an exceptional halt (EIP-211).
          U256 end = src_off + size;
          if (!end.FitsUint64() || end.low64() > src.size()) {
            return Halt(Outcome::kOutOfGas);
          }
        }
        CopyToMemory(src, src_off, o, s);
        break;
      }
      case Opcode::CODESIZE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(U256(code_.size()));
        break;
      case Opcode::GASPRICE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(evm_->tx_.gas_price);
        break;
      case Opcode::EXTCODESIZE: {
        if (!UseGas(gas::kExtCode)) return Halt(Outcome::kOutOfGas);
        U256& a = stack_.Top();
        a = U256(world_->GetCode(Address::FromWord(a)).size());
        break;
      }
      case Opcode::EXTCODECOPY: {
        U256 addr_word = stack_.PopUnsafe();
        U256 mem_off = stack_.PopUnsafe();
        U256 src_off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(mem_off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kExtCode + gas::kCopy * gas::ToWords(s))) {
          return Halt(Outcome::kOutOfGas);
        }
        CopyToMemory(world_->GetCode(Address::FromWord(addr_word)), src_off, o,
                     s);
        break;
      }
      case Opcode::RETURNDATASIZE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(U256(return_data_.size()));
        break;

      // ---- Block ----
      case Opcode::BLOCKHASH: {
        if (!UseGas(gas::kBlockhash)) return Halt(Outcome::kOutOfGas);
        U256 num = stack_.PopUnsafe();
        Hash32 h{};
        const BlockContext& blk = evm_->block_;
        if (blk.block_hash && num.FitsUint64() && num.low64() < blk.number &&
            num.low64() + 256 >= blk.number) {
          h = blk.block_hash(num.low64());
        }
        stack_.PushUnsafe(
            U256::FromBigEndianTruncating(BytesView(h.data(), h.size())));
        break;
      }
      case Opcode::COINBASE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(evm_->block_.coinbase.ToWord());
        break;
      case Opcode::TIMESTAMP:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(U256(evm_->block_.timestamp));
        break;
      case Opcode::NUMBER:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(U256(evm_->block_.number));
        break;
      case Opcode::DIFFICULTY:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(evm_->block_.difficulty);
        break;
      case Opcode::GASLIMIT:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(U256(evm_->block_.gas_limit));
        break;

      // ---- Stack / memory / storage / control ----
      case Opcode::POP: {
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.Drop(1);
        break;
      }
      case Opcode::MLOAD: {
        U256 off = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, U256(32), &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(LoadWord(o));
        break;
      }
      case Opcode::MSTORE: {
        U256 off = stack_.PopUnsafe();
        U256 v = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, U256(32), &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        StoreWord(o, v);
        break;
      }
      case Opcode::MSTORE8: {
        U256 off = stack_.PopUnsafe();
        U256 v = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, U256(1), &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        memory_[o] = static_cast<uint8_t>(v.low64() & 0xff);
        break;
      }
      case Opcode::SLOAD: {
        if (!UseGas(gas::kSload)) return Halt(Outcome::kOutOfGas);
        U256& key = stack_.Top();
        key = world_->GetStorage(self_, key);
        break;
      }
      case Opcode::SSTORE: {
        if (is_static_) return Halt(Outcome::kStaticViolation);
        U256 key = stack_.PopUnsafe();
        U256 value = stack_.PopUnsafe();
        U256 current = world_->GetStorage(self_, key);
        uint64_t cost = gas::kSstoreReset;
        if (current.IsZero() && !value.IsZero()) cost = gas::kSstoreSet;
        if (!current.IsZero() && value.IsZero()) refund_ += gas::kSstoreRefund;
        if (!UseGas(cost)) return Halt(Outcome::kOutOfGas);
        world_->SetStorage(self_, key, value);
        break;
      }
      case Opcode::JUMP: {
        if (!UseGas(gas::kMid)) return Halt(Outcome::kOutOfGas);
        U256 dest = stack_.PopUnsafe();
        if (!dest.FitsUint64() || dest.low64() >= code_.size() ||
            !(*jumpdests_)[dest.low64()]) {
          return Halt(Outcome::kBadJumpDestination);
        }
        pc_ = dest.low64();
        continue;
      }
      case Opcode::JUMPI: {
        if (!UseGas(gas::kHigh)) return Halt(Outcome::kOutOfGas);
        U256 dest = stack_.PopUnsafe();
        U256 cond = stack_.PopUnsafe();
        if (!cond.IsZero()) {
          if (!dest.FitsUint64() || dest.low64() >= code_.size() ||
              !(*jumpdests_)[dest.low64()]) {
            return Halt(Outcome::kBadJumpDestination);
          }
          pc_ = dest.low64();
          continue;
        }
        break;
      }
      case Opcode::PC:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(U256(pc_));
        break;
      case Opcode::MSIZE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(U256(memory_.size()));
        break;
      case Opcode::GAS:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        stack_.PushUnsafe(U256(gas_));
        break;
      case Opcode::JUMPDEST:
        if (!UseGas(gas::kJumpdest)) return Halt(Outcome::kOutOfGas);
        break;

      // ---- System ----
      case Opcode::CREATE:
      case Opcode::CREATE2:
        if (!DoCreate(op)) return Halt(pending_halt_);
        break;
      case Opcode::CALL:
      case Opcode::CALLCODE:
      case Opcode::DELEGATECALL:
      case Opcode::STATICCALL:
        if (!DoCall(op)) return Halt(pending_halt_);
        break;
      case Opcode::RETURN: {
        U256 off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
        output_.assign(memory_.begin() + o, memory_.begin() + o + s);
        return Halt(Outcome::kSuccess);
      }
      case Opcode::REVERT: {
        U256 off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
        output_.assign(memory_.begin() + o, memory_.begin() + o + s);
        return Halt(Outcome::kRevert);
      }
      case Opcode::SELFDESTRUCT: {
        if (is_static_) return Halt(Outcome::kStaticViolation);
        U256 beneficiary_word = stack_.PopUnsafe();
        Address beneficiary = Address::FromWord(beneficiary_word);
        uint64_t cost = gas::kSelfdestruct;
        U256 balance = world_->GetBalance(self_);
        if (!world_->Exists(beneficiary) && !balance.IsZero()) {
          cost += gas::kCallNewAccount;
        }
        if (!UseGas(cost)) return Halt(Outcome::kOutOfGas);
        refund_ += gas::kSelfdestructRefund;
        world_->AddBalance(beneficiary, balance);
        world_->DeleteAccount(self_);
        return Halt(Outcome::kSuccess);
      }
      default:
        return Halt(Outcome::kInvalidInstruction);
    }
    pc_ = next_pc;
  }
  return Halt(Outcome::kSuccess);
}

// ---------------------------------------------------------------------------
// Threaded dispatch over the analysis cell stream.
// ---------------------------------------------------------------------------

// Both dispatch styles share the handler bodies below; only the case labels
// and the "advance to next cell" step differ.
#if ONOFF_EVM_COMPUTED_GOTO
#define ONOFF_OPCASE(name) L_##name:
#define ONOFF_NEXT()               \
  do {                             \
    cell = ip++;                   \
    goto* kLabels[cell->op];       \
  } while (0)
#else
#define ONOFF_OPCASE(name) case Handler::name:
#define ONOFF_NEXT() break
#endif

// Halts the frame from a threaded handler: credits the opcodes of the
// current block whose execution has begun (the cell's ops_end prefix —
// the reference loop counts an instruction before executing it) and
// returns through Halt.
#define ONOFF_HALT(outcome_expr)                                        \
  do {                                                                  \
    if (op_counters != nullptr && pending != nullptr) {                 \
      for (uint32_t fi = 0; fi < cell->ops_end; ++fi) {                 \
        (*op_counters)[an.ops[pending->ops_begin + fi]]->Inc();         \
      }                                                                 \
    }                                                                   \
    return Halt(outcome_expr);                                          \
  } while (0)

#define ONOFF_BINOP_HANDLER(name)                     \
  ONOFF_OPCASE(name) {                                \
    U256 a = stack_.PopUnsafe();                      \
    U256& b = stack_.Top();                           \
    b = EvalBinop(Handler::name, a, b);               \
    ONOFF_NEXT();                                     \
  }

ExecResult Interpreter::RunThreaded() {
  const std::array<obs::Counter*, 256>* op_counters = OpcodeCounters();
  const CodeAnalysis& an = *analysis_;
  const CodeCell* const cells = an.cells.data();
  const CodeCell* ip = cells;   // next cell to execute
  const CodeCell* cell = cells;  // currently executing cell
  const CodeBlock* pending = nullptr;  // block with unflushed counters

#if ONOFF_EVM_COMPUTED_GOTO
  // Function-local so label addresses are in scope; `static const` so GCC
  // and Clang constant-initialize it (no racy first-call initialization
  // when frames run on multiple threads).
  static const void* const kLabels[] = {
#define ONOFF_EVM_H_LABEL(name) &&L_##name,
      ONOFF_EVM_HANDLER_LIST(ONOFF_EVM_H_LABEL)
#undef ONOFF_EVM_H_LABEL
  };
  ONOFF_NEXT();
#else
  for (;;) {
    cell = ip++;
    switch (static_cast<Handler>(cell->op)) {
#endif

      // ---- Block bookkeeping ----
      ONOFF_OPCASE(BEGIN_BLOCK) {
        // The previous block ran to completion (control only leaves a
        // block through its end), so flush its aggregated counters.
        if (op_counters != nullptr && pending != nullptr) {
          for (uint32_t i = pending->agg_begin; i < pending->agg_end; ++i) {
            (*op_counters)[an.agg[i].first]->Inc(an.agg[i].second);
          }
        }
        const CodeBlock& b = an.blocks[cell->imm];
        pending = &b;
        size_t sz = stack_.size();
        // Hoisted per-block checks. On failure nothing of this block has
        // executed yet and the frame is provably about to halt — replay on
        // the reference loop for the exact outcome, gas and counters.
        if (sz < b.stack_req || sz + b.stack_max > gas::kMaxStack ||
            gas_ < b.base_gas) {
          return FallbackAt(cell->pc, nullptr, 0);
        }
        gas_ -= b.base_gas;
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CHARGE) {
        // Static gas of the segment after a checkpoint. On failure the ops
        // up to and including the checkpoint have executed; replay covers
        // the rest of the segment.
        if (gas_ < cell->imm) {
          return FallbackAt(cell->pc, pending, cell->ops_end);
        }
        gas_ -= cell->imm;
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(IMPLICIT_STOP) { ONOFF_HALT(Outcome::kSuccess); }

      ONOFF_OPCASE(STOP) { ONOFF_HALT(Outcome::kSuccess); }

      // ---- Arithmetic / comparison / bitwise (static gas hoisted) ----
      ONOFF_BINOP_HANDLER(ADD)
      ONOFF_BINOP_HANDLER(MUL)
      ONOFF_BINOP_HANDLER(SUB)
      ONOFF_BINOP_HANDLER(DIV)
      ONOFF_BINOP_HANDLER(SDIV)
      ONOFF_BINOP_HANDLER(MOD)
      ONOFF_BINOP_HANDLER(SMOD)
      ONOFF_BINOP_HANDLER(SIGNEXTEND)
      ONOFF_BINOP_HANDLER(LT)
      ONOFF_BINOP_HANDLER(GT)
      ONOFF_BINOP_HANDLER(SLT)
      ONOFF_BINOP_HANDLER(SGT)
      ONOFF_BINOP_HANDLER(EQ)
      ONOFF_BINOP_HANDLER(AND)
      ONOFF_BINOP_HANDLER(OR)
      ONOFF_BINOP_HANDLER(XOR)
      ONOFF_BINOP_HANDLER(BYTE)
      ONOFF_BINOP_HANDLER(SHL)
      ONOFF_BINOP_HANDLER(SHR)
      ONOFF_BINOP_HANDLER(SAR)

      ONOFF_OPCASE(ADDMOD) {
        U256 a = stack_.PopUnsafe();
        U256 b = stack_.PopUnsafe();
        U256& m = stack_.Top();
        m = U256::AddMod(a, b, m);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(MULMOD) {
        U256 a = stack_.PopUnsafe();
        U256 b = stack_.PopUnsafe();
        U256& m = stack_.Top();
        m = U256::MulMod(a, b, m);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(EXP) {  // checkpoint: dynamic gas
        U256 base = stack_.PopUnsafe();
        U256 exp = stack_.PopUnsafe();
        uint64_t exp_bytes = (exp.BitLength() + 7) / 8;
        if (!UseGas(gas::kExp + gas::kExpByte * exp_bytes)) {
          ONOFF_HALT(Outcome::kOutOfGas);
        }
        stack_.PushUnsafe(base.Exp(exp));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(ISZERO) {
        U256& a = stack_.Top();
        a = U256(a.IsZero() ? 1 : 0);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(NOT) {
        U256& a = stack_.Top();
        a = ~a;
        ONOFF_NEXT();
      }

      ONOFF_OPCASE(SHA3) {  // checkpoint: memory expansion + dynamic gas
        U256 off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, size, &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        if (!UseGas(gas::kSha3 + gas::kSha3Word * gas::ToWords(s))) {
          ONOFF_HALT(Outcome::kOutOfGas);
        }
        Hash32 h = Keccak256(BytesView(memory_.data() + o, s));
        stack_.PushUnsafe(
            U256::FromBigEndianTruncating(BytesView(h.data(), h.size())));
        ONOFF_NEXT();
      }

      // ---- Environment (static gas hoisted) ----
      ONOFF_OPCASE(ADDRESS) {
        stack_.PushUnsafe(self_.ToWord());
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(BALANCE) {
        U256& a = stack_.Top();
        a = world_->GetBalance(Address::FromWord(a));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(ORIGIN) {
        stack_.PushUnsafe(evm_->tx_.origin.ToWord());
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CALLER) {
        stack_.PushUnsafe(caller_.ToWord());
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CALLVALUE) {
        stack_.PushUnsafe(value_);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CALLDATALOAD) {
        U256 off = stack_.PopUnsafe();
        U256 v;
        for (int i = 0; i < 32; ++i) {
          U256 pos = off + U256(static_cast<uint64_t>(i));
          uint8_t b = 0;
          if (pos.FitsUint64() && pos.low64() < data_.size()) {
            b = data_[pos.low64()];
          }
          v = (v << 8) | U256(b);
        }
        stack_.PushUnsafe(v);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CALLDATASIZE) {
        stack_.PushUnsafe(U256(data_.size()));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CALLDATACOPY) {  // checkpoint
        U256 mem_off = stack_.PopUnsafe();
        U256 src_off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(mem_off, size, &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow + gas::kCopy * gas::ToWords(s))) {
          ONOFF_HALT(Outcome::kOutOfGas);
        }
        CopyToMemory(data_, src_off, o, s);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CODESIZE) {
        stack_.PushUnsafe(U256(code_.size()));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CODECOPY) {  // checkpoint
        U256 mem_off = stack_.PopUnsafe();
        U256 src_off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(mem_off, size, &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow + gas::kCopy * gas::ToWords(s))) {
          ONOFF_HALT(Outcome::kOutOfGas);
        }
        CopyToMemory(code_, src_off, o, s);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(GASPRICE) {
        stack_.PushUnsafe(evm_->tx_.gas_price);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(EXTCODESIZE) {
        U256& a = stack_.Top();
        a = U256(world_->GetCode(Address::FromWord(a)).size());
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(EXTCODECOPY) {  // checkpoint
        U256 addr_word = stack_.PopUnsafe();
        U256 mem_off = stack_.PopUnsafe();
        U256 src_off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(mem_off, size, &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        if (!UseGas(gas::kExtCode + gas::kCopy * gas::ToWords(s))) {
          ONOFF_HALT(Outcome::kOutOfGas);
        }
        CopyToMemory(world_->GetCode(Address::FromWord(addr_word)), src_off, o,
                     s);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(RETURNDATASIZE) {
        stack_.PushUnsafe(U256(return_data_.size()));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(RETURNDATACOPY) {  // checkpoint
        U256 mem_off = stack_.PopUnsafe();
        U256 src_off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(mem_off, size, &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow + gas::kCopy * gas::ToWords(s))) {
          ONOFF_HALT(Outcome::kOutOfGas);
        }
        {
          // Reading past RETURNDATA is an exceptional halt (EIP-211).
          U256 end = src_off + size;
          if (!end.FitsUint64() || end.low64() > return_data_.size()) {
            ONOFF_HALT(Outcome::kOutOfGas);
          }
        }
        CopyToMemory(return_data_, src_off, o, s);
        ONOFF_NEXT();
      }

      // ---- Block environment ----
      ONOFF_OPCASE(BLOCKHASH) {
        U256 num = stack_.PopUnsafe();
        Hash32 h{};
        const BlockContext& blk = evm_->block_;
        if (blk.block_hash && num.FitsUint64() && num.low64() < blk.number &&
            num.low64() + 256 >= blk.number) {
          h = blk.block_hash(num.low64());
        }
        stack_.PushUnsafe(
            U256::FromBigEndianTruncating(BytesView(h.data(), h.size())));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(COINBASE) {
        stack_.PushUnsafe(evm_->block_.coinbase.ToWord());
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(TIMESTAMP) {
        stack_.PushUnsafe(U256(evm_->block_.timestamp));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(NUMBER) {
        stack_.PushUnsafe(U256(evm_->block_.number));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(DIFFICULTY) {
        stack_.PushUnsafe(evm_->block_.difficulty);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(GASLIMIT) {
        stack_.PushUnsafe(U256(evm_->block_.gas_limit));
        ONOFF_NEXT();
      }

      // ---- Stack / memory / storage / control ----
      ONOFF_OPCASE(POP) {
        stack_.Drop(1);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(MLOAD) {  // checkpoint: memory expansion
        U256 off = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, U256(32), &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow)) ONOFF_HALT(Outcome::kOutOfGas);
        stack_.PushUnsafe(LoadWord(o));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(MSTORE) {  // checkpoint
        U256 off = stack_.PopUnsafe();
        U256 v = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, U256(32), &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow)) ONOFF_HALT(Outcome::kOutOfGas);
        StoreWord(o, v);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(MSTORE8) {  // checkpoint
        U256 off = stack_.PopUnsafe();
        U256 v = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, U256(1), &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow)) ONOFF_HALT(Outcome::kOutOfGas);
        memory_[o] = static_cast<uint8_t>(v.low64() & 0xff);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(SLOAD) {
        U256& key = stack_.Top();
        key = world_->GetStorage(self_, key);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(SSTORE) {  // checkpoint: static check + dynamic gas
        if (is_static_) ONOFF_HALT(Outcome::kStaticViolation);
        U256 key = stack_.PopUnsafe();
        U256 value = stack_.PopUnsafe();
        U256 current = world_->GetStorage(self_, key);
        uint64_t cost = gas::kSstoreReset;
        if (current.IsZero() && !value.IsZero()) cost = gas::kSstoreSet;
        if (!current.IsZero() && value.IsZero()) refund_ += gas::kSstoreRefund;
        if (!UseGas(cost)) ONOFF_HALT(Outcome::kOutOfGas);
        world_->SetStorage(self_, key, value);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(JUMP) {
        U256 dest = stack_.PopUnsafe();
        if (!dest.FitsUint64() || dest.low64() >= code_.size() ||
            an.jump_cell[dest.low64()] < 0) {
          ONOFF_HALT(Outcome::kBadJumpDestination);
        }
        ip = cells + an.jump_cell[dest.low64()];
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(JUMPI) {
        U256 dest = stack_.PopUnsafe();
        U256 cond = stack_.PopUnsafe();
        if (!cond.IsZero()) {
          if (!dest.FitsUint64() || dest.low64() >= code_.size() ||
              an.jump_cell[dest.low64()] < 0) {
            ONOFF_HALT(Outcome::kBadJumpDestination);
          }
          ip = cells + an.jump_cell[dest.low64()];
        }
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(PC) {
        stack_.PushUnsafe(U256(static_cast<uint64_t>(cell->pc)));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(MSIZE) {
        stack_.PushUnsafe(U256(memory_.size()));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(GAS) {  // checkpoint: observes exact remaining gas
        if (!UseGas(gas::kBase)) ONOFF_HALT(Outcome::kOutOfGas);
        stack_.PushUnsafe(U256(gas_));
        ONOFF_NEXT();
      }

      // ---- Immediate families ----
      ONOFF_OPCASE(PUSH) {
        stack_.PushUnsafe(an.pool[cell->imm]);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(DUP) {
        stack_.PushUnsafe(stack_.Peek(cell->arg - 1));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(SWAP) {
        std::swap(stack_.Top(), stack_.Peek(cell->arg));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(LOG) {  // checkpoint: static check + dynamic gas
        if (is_static_) ONOFF_HALT(Outcome::kStaticViolation);
        int topics = cell->arg;
        U256 off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        std::vector<U256> topic_vals(topics);
        for (int i = 0; i < topics; ++i) topic_vals[i] = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, size, &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        uint64_t cost =
            gas::kLog + gas::kLogTopic * topics + gas::kLogData * s;
        if (!UseGas(cost)) ONOFF_HALT(Outcome::kOutOfGas);
        LogEntry entry;
        entry.address = self_;
        entry.topics = std::move(topic_vals);
        entry.data.assign(memory_.begin() + o, memory_.begin() + o + s);
        logs_.push_back(std::move(entry));
        ONOFF_NEXT();
      }

      // ---- System (checkpoints: DoCall/DoCreate replicate the switch) ----
      ONOFF_OPCASE(CREATE) {
        if (!DoCreate(Opcode::CREATE)) ONOFF_HALT(pending_halt_);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CREATE2) {
        if (!DoCreate(Opcode::CREATE2)) ONOFF_HALT(pending_halt_);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CALL) {
        if (!DoCall(Opcode::CALL)) ONOFF_HALT(pending_halt_);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(CALLCODE) {
        if (!DoCall(Opcode::CALLCODE)) ONOFF_HALT(pending_halt_);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(DELEGATECALL) {
        if (!DoCall(Opcode::DELEGATECALL)) ONOFF_HALT(pending_halt_);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(STATICCALL) {
        if (!DoCall(Opcode::STATICCALL)) ONOFF_HALT(pending_halt_);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(RETURN) {
        U256 off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, size, &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        output_.assign(memory_.begin() + o, memory_.begin() + o + s);
        ONOFF_HALT(Outcome::kSuccess);
      }
      ONOFF_OPCASE(REVERT) {
        U256 off = stack_.PopUnsafe();
        U256 size = stack_.PopUnsafe();
        uint64_t o = 0, s = 0;
        if (!Expand(off, size, &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        output_.assign(memory_.begin() + o, memory_.begin() + o + s);
        ONOFF_HALT(Outcome::kRevert);
      }
      ONOFF_OPCASE(INVALID) { ONOFF_HALT(Outcome::kInvalidInstruction); }
      ONOFF_OPCASE(SELFDESTRUCT) {
        if (is_static_) ONOFF_HALT(Outcome::kStaticViolation);
        U256 beneficiary_word = stack_.PopUnsafe();
        Address beneficiary = Address::FromWord(beneficiary_word);
        uint64_t cost = gas::kSelfdestruct;
        U256 balance = world_->GetBalance(self_);
        if (!world_->Exists(beneficiary) && !balance.IsZero()) {
          cost += gas::kCallNewAccount;
        }
        if (!UseGas(cost)) ONOFF_HALT(Outcome::kOutOfGas);
        refund_ += gas::kSelfdestructRefund;
        world_->AddBalance(beneficiary, balance);
        world_->DeleteAccount(self_);
        ONOFF_HALT(Outcome::kSuccess);
      }

      // ---- Superinstructions ----
      ONOFF_OPCASE(PUSH_JUMP) {
        // PUSHn <valid dest> + JUMP; the target cell was resolved at
        // decode, so the pair is a direct goto.
        ip = cells + cell->imm;
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(PUSH_JUMP_BAD) {
        // PUSHn <invalid dest> + JUMP always faults.
        ONOFF_HALT(Outcome::kBadJumpDestination);
      }
      ONOFF_OPCASE(PUSH_JUMPI) {
        U256 cond = stack_.PopUnsafe();
        if (!cond.IsZero()) ip = cells + cell->imm;
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(PUSH_JUMPI_BAD) {
        // Invalid constant destination: faults only when taken.
        U256 cond = stack_.PopUnsafe();
        if (!cond.IsZero()) ONOFF_HALT(Outcome::kBadJumpDestination);
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(DUP_MLOAD) {  // checkpoint (the MLOAD half)
        U256 off = stack_.Peek(cell->arg - 1);
        uint64_t o = 0, s = 0;
        if (!Expand(off, U256(32), &o, &s)) ONOFF_HALT(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow)) ONOFF_HALT(Outcome::kOutOfGas);
        stack_.PushUnsafe(LoadWord(o));
        ONOFF_NEXT();
      }
      ONOFF_OPCASE(PUSH_BINOP) {
        // The pushed constant is the first-popped operand.
        U256& b = stack_.Top();
        b = EvalBinop(static_cast<Handler>(cell->arg), an.pool[cell->imm], b);
        ONOFF_NEXT();
      }

#if !ONOFF_EVM_COMPUTED_GOTO
      default:
        return Halt(Outcome::kInvalidInstruction);
    }
  }
#endif
}

#undef ONOFF_BINOP_HANDLER
#undef ONOFF_HALT
#undef ONOFF_NEXT
#undef ONOFF_OPCASE

// ---------------------------------------------------------------------------
// Sub-calls (shared by both dispatch loops; stack-depth preconditions are
// established by the per-instruction or per-block checks).
// ---------------------------------------------------------------------------

bool Interpreter::DoCall(Opcode op) {
  U256 gas_req = stack_.PopUnsafe();
  U256 to_word = stack_.PopUnsafe();
  U256 value;
  if (op == Opcode::CALL || op == Opcode::CALLCODE) {
    value = stack_.PopUnsafe();
  }
  U256 in_off = stack_.PopUnsafe();
  U256 in_size = stack_.PopUnsafe();
  U256 out_off = stack_.PopUnsafe();
  U256 out_size = stack_.PopUnsafe();

  Address to = Address::FromWord(to_word);

  if (op == Opcode::CALL && is_static_ && !value.IsZero()) {
    pending_halt_ = Outcome::kStaticViolation;
    return false;
  }

  uint64_t in_o = 0, in_s = 0, out_o = 0, out_s = 0;
  if (!Expand(in_off, in_size, &in_o, &in_s) ||
      !Expand(out_off, out_size, &out_o, &out_s)) {
    pending_halt_ = Outcome::kOutOfGas;
    return false;
  }

  uint64_t base_cost = gas::kCall;
  if ((op == Opcode::CALL || op == Opcode::CALLCODE) && !value.IsZero()) {
    base_cost += gas::kCallValue;
  }
  if (op == Opcode::CALL && !value.IsZero() && !world_->Exists(to)) {
    base_cost += gas::kCallNewAccount;
  }
  if (!UseGas(base_cost)) {
    pending_halt_ = Outcome::kOutOfGas;
    return false;
  }

  // EIP-150: forward at most all-but-one-64th.
  uint64_t max_forward = gas_ - gas_ / 64;
  uint64_t forwarded = gas_req.FitsUint64()
                           ? std::min(gas_req.low64(), max_forward)
                           : max_forward;
  gas_ -= forwarded;
  uint64_t stipend = 0;
  if ((op == Opcode::CALL || op == Opcode::CALLCODE) && !value.IsZero()) {
    stipend = gas::kCallStipend;
  }

  Bytes input(memory_.begin() + in_o, memory_.begin() + in_o + in_s);

  ExecResult child;
  switch (op) {
    case Opcode::CALL: {
      CallMessage msg;
      msg.caller = self_;
      msg.to = to;
      msg.value = value;
      msg.data = std::move(input);
      msg.gas = forwarded + stipend;
      msg.is_static = is_static_;
      child = evm_->CallInternal(msg, depth_ + 1);
      break;
    }
    case Opcode::STATICCALL: {
      CallMessage msg;
      msg.caller = self_;
      msg.to = to;
      msg.value = U256();
      msg.data = std::move(input);
      msg.gas = forwarded;
      msg.is_static = true;
      child = evm_->CallInternal(msg, depth_ + 1);
      break;
    }
    case Opcode::CALLCODE:
    case Opcode::DELEGATECALL: {
      // Run the target's code in OUR storage context.
      if (depth_ + 1 > gas::kMaxCallDepth) {
        child.outcome = Outcome::kCallDepthExceeded;
        child.gas_left = forwarded + stipend;
        break;
      }
      if (op == Opcode::CALLCODE && world_->GetBalance(self_) < value) {
        child.outcome = Outcome::kInsufficientBalance;
        child.gas_left = forwarded + stipend;
        break;
      }
      FrameContext frame;
      if (hook_ != nullptr) {
        frame.kind = op == Opcode::DELEGATECALL ? "DELEGATECALL" : "CALLCODE";
        frame.depth = depth_ + 1;
        frame.self = self_;
        frame.code_address = to;
        frame.caller = op == Opcode::DELEGATECALL ? caller_ : self_;
        frame.value = op == Opcode::DELEGATECALL ? value_ : value;
        frame.gas = forwarded + stipend;
        frame.input_size = input.size();
      }
      FrameScope frame_scope(hook_, frame, &child);
      auto snapshot = world_->TakeSnapshot();
      if (auto pre = RunPrecompile(to, input, forwarded + stipend)) {
        child.outcome = pre->success ? Outcome::kSuccess : Outcome::kOutOfGas;
        child.output = std::move(pre->output);
        child.gas_left = pre->success ? forwarded + stipend - pre->gas_cost : 0;
      } else {
        Interpreter sub(evm_, to, self_,
                        op == Opcode::DELEGATECALL ? caller_ : self_,
                        op == Opcode::DELEGATECALL ? value_ : value,
                        std::move(input), forwarded + stipend, is_static_,
                        depth_ + 1);
        child = sub.Run();
      }
      if (!child.ok()) world_->RevertToSnapshot(snapshot);
      break;
    }
    default:
      pending_halt_ = Outcome::kInvalidInstruction;
      return false;
  }

  // Copy return data into the out region; record it for RETURNDATACOPY.
  return_data_ = child.output;
  uint64_t copy = std::min<uint64_t>(out_s, child.output.size());
  if (copy > 0) {
    std::copy(child.output.begin(), child.output.begin() + copy,
              memory_.begin() + out_o);
  }
  gas_ += child.gas_left;
  if (child.ok()) {
    refund_ += child.refund;
    for (auto& log : child.logs) logs_.push_back(std::move(log));
  }
  stack_.Push(U256(child.ok() ? 1 : 0));
  return true;
}

bool Interpreter::DoCreate(Opcode op) {
  if (is_static_) {
    pending_halt_ = Outcome::kStaticViolation;
    return false;
  }
  U256 value = stack_.PopUnsafe();
  U256 off = stack_.PopUnsafe();
  U256 size = stack_.PopUnsafe();
  U256 salt;
  if (op == Opcode::CREATE2) salt = stack_.PopUnsafe();

  uint64_t o = 0, s = 0;
  if (!Expand(off, size, &o, &s)) {
    pending_halt_ = Outcome::kOutOfGas;
    return false;
  }
  uint64_t cost = gas::kCreate;
  if (op == Opcode::CREATE2) cost += gas::kSha3Word * gas::ToWords(s);
  if (!UseGas(cost)) {
    pending_halt_ = Outcome::kOutOfGas;
    return false;
  }
  Bytes init_code(memory_.begin() + o, memory_.begin() + o + s);

  // EIP-150: all but one 64th.
  uint64_t forwarded = gas_ - gas_ / 64;
  gas_ -= forwarded;

  ExecResult child = evm_->CreateInternal(
      self_, value, init_code, forwarded,
      op == Opcode::CREATE2 ? &salt : nullptr, depth_ + 1);

  return_data_ = child.ok() ? Bytes{} : child.output;
  gas_ += child.gas_left;
  if (child.ok()) {
    refund_ += child.refund;
    for (auto& log : child.logs) logs_.push_back(std::move(log));
    stack_.Push(child.created.ToWord());
  } else {
    stack_.Push(U256());
  }
  return true;
}

}  // namespace onoff::evm
