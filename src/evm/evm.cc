#include "evm/evm.h"

#include <cassert>

#include "evm/interp.h"
#include "evm/precompiles.h"
#include "obs/metrics.h"
#include "rlp/rlp.h"

namespace onoff::evm {

const char* OutcomeToString(Outcome outcome) {
  switch (outcome) {
    case Outcome::kSuccess:
      return "Success";
    case Outcome::kRevert:
      return "Revert";
    case Outcome::kOutOfGas:
      return "OutOfGas";
    case Outcome::kInvalidInstruction:
      return "InvalidInstruction";
    case Outcome::kStackUnderflow:
      return "StackUnderflow";
    case Outcome::kStackOverflow:
      return "StackOverflow";
    case Outcome::kBadJumpDestination:
      return "BadJumpDestination";
    case Outcome::kStaticViolation:
      return "StaticViolation";
    case Outcome::kCallDepthExceeded:
      return "CallDepthExceeded";
    case Outcome::kInsufficientBalance:
      return "InsufficientBalance";
    case Outcome::kCodeSizeExceeded:
      return "CodeSizeExceeded";
  }
  return "Unknown";
}

namespace {

// Process-wide default dispatch mode; per-Evm override via
// set_dispatch_mode, per-chain via ChainConfig::evm_dispatch.
DispatchMode g_default_dispatch = DispatchMode::kThreaded;

}  // namespace

DispatchMode DefaultDispatchMode() { return g_default_dispatch; }

void SetDefaultDispatchMode(DispatchMode mode) { g_default_dispatch = mode; }

bool ParseDispatchMode(const std::string& name, DispatchMode* out) {
  if (name == "switch") {
    *out = DispatchMode::kSwitch;
  } else if (name == "threaded-nofuse") {
    *out = DispatchMode::kThreadedNoFuse;
  } else if (name == "threaded") {
    *out = DispatchMode::kThreaded;
  } else {
    return false;
  }
  return true;
}

const char* DispatchModeToString(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kSwitch:
      return "switch";
    case DispatchMode::kThreadedNoFuse:
      return "threaded-nofuse";
    case DispatchMode::kThreaded:
      return "threaded";
  }
  return "unknown";
}


Address Evm::ContractAddress(const Address& creator, uint64_t nonce) {
  std::vector<rlp::Item> fields;
  fields.push_back(rlp::Item::String(creator.view()));
  fields.push_back(rlp::Item::Scalar(nonce));
  Bytes enc = rlp::Encode(rlp::Item::List(std::move(fields)));
  Hash32 h = Keccak256(enc);
  auto addr = Address::FromBytes(BytesView(h.data() + 12, 20));
  assert(addr.ok());
  return *addr;
}

Address Evm::Create2Address(const Address& creator, const U256& salt,
                            const Bytes& init_code) {
  Hash32 code_hash = Keccak256(init_code);
  Bytes preimage;
  preimage.push_back(0xff);
  Append(preimage, creator.view());
  Bytes salt_bytes = salt.ToBytes();
  Append(preimage, salt_bytes);
  Append(preimage, BytesView(code_hash.data(), code_hash.size()));
  Hash32 h = Keccak256(preimage);
  auto addr = Address::FromBytes(BytesView(h.data() + 12, 20));
  assert(addr.ok());
  return *addr;
}

ExecResult Evm::Call(const CallMessage& msg) {
  static obs::Counter* calls = obs::GetCounterOrNull("evm.calls");
  static obs::Histogram* call_gas =
      obs::GetHistogramOrNull("evm.call_gas", obs::DefaultGasBuckets());
  ExecResult res = CallInternal(msg, 0);
  if (calls != nullptr) calls->Inc();
  if (call_gas != nullptr) {
    call_gas->Observe(static_cast<double>(msg.gas - res.gas_left));
  }
  return res;
}

ExecResult Evm::Create(const Address& caller, const U256& value,
                       const Bytes& init_code, uint64_t gas) {
  static obs::Counter* creates = obs::GetCounterOrNull("evm.creates");
  static obs::Histogram* create_gas =
      obs::GetHistogramOrNull("evm.create_gas", obs::DefaultGasBuckets());
  ExecResult res = CreateInternal(caller, value, init_code, gas, nullptr, 0);
  if (creates != nullptr) creates->Inc();
  if (create_gas != nullptr) {
    create_gas->Observe(static_cast<double>(gas - res.gas_left));
  }
  return res;
}

ExecResult Evm::CallInternal(const CallMessage& msg, int depth) {
  ExecResult res;
  if (depth > gas::kMaxCallDepth) {
    res.outcome = Outcome::kCallDepthExceeded;
    res.gas_left = msg.gas;
    return res;
  }
  if (world_->GetBalance(msg.caller) < msg.value) {
    res.outcome = Outcome::kInsufficientBalance;
    res.gas_left = msg.gas;
    return res;
  }

  FrameContext frame;
  if (trace_hook_ != nullptr) {
    frame.kind = IsPrecompile(msg.to)                ? "PRECOMPILE"
                 : world_->GetCode(msg.to).empty()   ? "TRANSFER"
                 : msg.is_static                     ? "STATICCALL"
                                                     : "CALL";
    frame.depth = depth;
    frame.self = msg.to;
    frame.code_address = msg.to;
    frame.caller = msg.caller;
    frame.value = msg.value;
    frame.gas = msg.gas;
    frame.input_size = msg.data.size();
  }
  FrameScope frame_scope(trace_hook_, frame, &res);

  auto snapshot = world_->TakeSnapshot();
  if (!msg.value.IsZero()) {
    Status st = world_->Transfer(msg.caller, msg.to, msg.value);
    assert(st.ok());
    (void)st;
  }

  if (auto pre = RunPrecompile(msg.to, msg.data, msg.gas)) {
    if (pre->success) {
      res.outcome = Outcome::kSuccess;
      res.output = std::move(pre->output);
      res.gas_left = msg.gas - pre->gas_cost;
    } else {
      res.outcome = Outcome::kOutOfGas;
      world_->RevertToSnapshot(snapshot);
    }
    return res;
  }

  const Bytes& code = world_->GetCode(msg.to);
  if (code.empty()) {
    // Plain transfer.
    res.outcome = Outcome::kSuccess;
    res.gas_left = msg.gas;
    return res;
  }

  Interpreter interp(this, msg.to, msg.to, msg.caller, msg.value, msg.data,
                     msg.gas, msg.is_static, depth);
  res = interp.Run();
  if (!res.ok()) world_->RevertToSnapshot(snapshot);
  return res;
}

ExecResult Evm::CreateInternal(const Address& caller, const U256& value,
                               const Bytes& init_code, uint64_t gas,
                               const U256* salt, int depth) {
  ExecResult res;
  if (depth > gas::kMaxCallDepth) {
    res.outcome = Outcome::kCallDepthExceeded;
    res.gas_left = gas;
    return res;
  }
  if (world_->GetBalance(caller) < value) {
    res.outcome = Outcome::kInsufficientBalance;
    res.gas_left = gas;
    return res;
  }

  uint64_t nonce = world_->GetNonce(caller);
  Address new_addr = salt != nullptr
                         ? Create2Address(caller, *salt, init_code)
                         : ContractAddress(caller, nonce);
  world_->IncrementNonce(caller);

  // Address collision (existing code or nonce) is an exceptional failure.
  if (!world_->GetCode(new_addr).empty() || world_->GetNonce(new_addr) != 0) {
    res.outcome = Outcome::kInvalidInstruction;
    return res;
  }

  FrameContext frame;
  if (trace_hook_ != nullptr) {
    frame.kind = salt != nullptr ? "CREATE2" : "CREATE";
    frame.depth = depth;
    frame.self = new_addr;
    frame.code_address = new_addr;
    frame.caller = caller;
    frame.value = value;
    frame.gas = gas;
    frame.input_size = init_code.size();
  }
  FrameScope frame_scope(trace_hook_, frame, &res);

  auto snapshot = world_->TakeSnapshot();
  world_->CreateAccount(new_addr);
  world_->SetNonce(new_addr, 1);  // EIP-161
  if (!value.IsZero()) {
    Status st = world_->Transfer(caller, new_addr, value);
    assert(st.ok());
    (void)st;
  }

  Interpreter interp(this, new_addr, new_addr, caller, value, Bytes{}, gas,
                     /*is_static=*/false, depth, &init_code);
  ExecResult init_res = interp.Run();

  if (init_res.outcome == Outcome::kRevert) {
    world_->RevertToSnapshot(snapshot);
    init_res.created = Address();
    res = std::move(init_res);
    return res;
  }
  if (!init_res.ok()) {
    world_->RevertToSnapshot(snapshot);
    res = std::move(init_res);
    return res;
  }

  // Deposit the returned runtime code.
  const Bytes& deployed = init_res.output;
  if (deployed.size() > gas::kMaxCodeSize) {
    world_->RevertToSnapshot(snapshot);
    res.outcome = Outcome::kCodeSizeExceeded;
    return res;
  }
  uint64_t deposit_cost = gas::kCodeDeposit * deployed.size();
  if (init_res.gas_left < deposit_cost) {
    world_->RevertToSnapshot(snapshot);
    res.outcome = Outcome::kOutOfGas;
    return res;
  }
  world_->SetCode(new_addr, deployed);

  res.outcome = Outcome::kSuccess;
  res.gas_left = init_res.gas_left - deposit_cost;
  res.refund = init_res.refund;
  res.logs = std::move(init_res.logs);
  res.created = new_addr;
  return res;
}

}  // namespace onoff::evm
