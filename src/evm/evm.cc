#include "evm/evm.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "evm/gas.h"
#include "evm/opcodes.h"
#include "evm/precompiles.h"
#include "evm/trace_hook.h"
#include "obs/metrics.h"
#include "rlp/rlp.h"

namespace onoff::evm {

namespace {

// Per-opcode execution counters ("evm.opcode.<MNEMONIC>"), built once on
// first use; nullptr when metrics are disabled so the interpreter loop pays
// a single never-taken branch per instruction.
const std::array<obs::Counter*, 256>* OpcodeCounters() {
  static const std::array<obs::Counter*, 256>* const table =
      []() -> const std::array<obs::Counter*, 256>* {
    obs::Registry* registry = obs::Registry::Global();
    if (registry == nullptr) return nullptr;
    auto* t = new std::array<obs::Counter*, 256>();
    for (int op = 0; op < 256; ++op) {
      const OpcodeInfo& info = GetOpcodeInfo(static_cast<uint8_t>(op));
      (*t)[op] = registry->GetCounter("evm.opcode." + std::string(info.name));
    }
    return t;
  }();
  return table;
}

// Marks the positions of valid JUMPDESTs (not inside PUSH immediates).
std::vector<bool> AnalyzeJumpdests(const Bytes& code) {
  std::vector<bool> valid(code.size(), false);
  for (size_t i = 0; i < code.size(); ++i) {
    uint8_t op = code[i];
    if (op == static_cast<uint8_t>(Opcode::JUMPDEST)) {
      valid[i] = true;
    } else if (IsPush(op)) {
      i += PushSize(op);
    }
  }
  return valid;
}

// Pairs OnFrameEnter (constructor) with OnFrameExit (destructor) around a
// frame body, so every exit path — including exceptional halts — reports the
// frame's final result exactly once. `result` must outlive the scope and
// hold the frame's outcome by the time the scope closes. When `hook` is
// null the scope costs two never-taken branches.
class FrameScope {
 public:
  FrameScope(TraceHook* hook, const FrameContext& frame,
             const ExecResult* result)
      : hook_(hook), frame_(frame), result_(result) {
    if (hook_ != nullptr) hook_->OnFrameEnter(frame_);
  }
  ~FrameScope() {
    if (hook_ != nullptr) {
      hook_->OnFrameExit(frame_, *result_, frame_.gas - result_->gas_left);
    }
  }
  FrameScope(const FrameScope&) = delete;
  FrameScope& operator=(const FrameScope&) = delete;

 private:
  TraceHook* hook_;
  const FrameContext& frame_;
  const ExecResult* result_;
};

}  // namespace

const char* OutcomeToString(Outcome outcome) {
  switch (outcome) {
    case Outcome::kSuccess:
      return "Success";
    case Outcome::kRevert:
      return "Revert";
    case Outcome::kOutOfGas:
      return "OutOfGas";
    case Outcome::kInvalidInstruction:
      return "InvalidInstruction";
    case Outcome::kStackUnderflow:
      return "StackUnderflow";
    case Outcome::kStackOverflow:
      return "StackOverflow";
    case Outcome::kBadJumpDestination:
      return "BadJumpDestination";
    case Outcome::kStaticViolation:
      return "StaticViolation";
    case Outcome::kCallDepthExceeded:
      return "CallDepthExceeded";
    case Outcome::kInsufficientBalance:
      return "InsufficientBalance";
    case Outcome::kCodeSizeExceeded:
      return "CodeSizeExceeded";
  }
  return "Unknown";
}

// One interpreter activation (a call frame).
class Interpreter {
 public:
  Interpreter(Evm* evm, Address code_addr, Address self, Address caller,
              U256 value, Bytes data, uint64_t gas, bool is_static, int depth,
              const Bytes* override_code = nullptr)
      : evm_(evm),
        world_(evm->world_),
        self_(self),
        caller_(caller),
        value_(value),
        data_(std::move(data)),
        gas_(gas),
        is_static_(is_static),
        depth_(depth),
        hook_(evm->trace_hook_) {
    code_ = override_code != nullptr ? *override_code
                                     : world_->GetCode(code_addr);
    jumpdests_ = AnalyzeJumpdests(code_);
  }

  ExecResult Run();

 private:
  // ---- Halting helpers ----
  ExecResult Halt(Outcome outcome) {
    ExecResult res;
    res.outcome = outcome;
    // Exceptional halts consume all remaining gas; REVERT/STOP keep it.
    if (outcome == Outcome::kSuccess || outcome == Outcome::kRevert) {
      res.gas_left = gas_;
    }
    if (outcome == Outcome::kSuccess) {
      res.refund = refund_;
      res.logs = std::move(logs_);
    }
    res.output = std::move(output_);
    return res;
  }

  // ---- Gas ----
  bool UseGas(uint64_t amount) {
    if (gas_ < amount) return false;
    gas_ -= amount;
    return true;
  }

  // ---- Stack ----
  bool Push(const U256& v) {
    if (stack_.size() >= gas::kMaxStack) return false;
    stack_.push_back(v);
    return true;
  }
  bool Pop(U256* out) {
    if (stack_.empty()) return false;
    *out = stack_.back();
    stack_.pop_back();
    return true;
  }

  // ---- Memory ----
  // Charges expansion gas and resizes memory to cover [offset, offset+size).
  // Returns false on out-of-gas / absurd ranges. Size 0 never charges.
  bool Expand(const U256& offset, const U256& size, uint64_t* off_out,
              uint64_t* size_out) {
    if (size.IsZero()) {
      *off_out = 0;
      *size_out = 0;
      return true;
    }
    // Anything beyond 4 GiB would cost more gas than any block has.
    if (!offset.FitsUint64() || !size.FitsUint64() ||
        offset.low64() > (uint64_t{1} << 32) ||
        size.low64() > (uint64_t{1} << 32)) {
      return false;
    }
    uint64_t end = offset.low64() + size.low64();
    uint64_t new_words = gas::ToWords(end);
    uint64_t cur_words = memory_.size() / 32;
    if (new_words > cur_words) {
      uint64_t cost = gas::MemoryCost(new_words) - gas::MemoryCost(cur_words);
      if (!UseGas(cost)) return false;
      memory_.resize(new_words * 32, 0);
    }
    *off_out = offset.low64();
    *size_out = size.low64();
    return true;
  }

  U256 LoadWord(uint64_t offset) {
    return U256::FromBigEndianTruncating(BytesView(memory_.data() + offset, 32));
  }
  void StoreWord(uint64_t offset, const U256& v) {
    auto be = v.ToBigEndian();
    std::copy(be.begin(), be.end(), memory_.begin() + offset);
  }

  // Copies `size` bytes from src[src_off..] into memory at mem_off,
  // zero-padding reads past the end of src.
  void CopyToMemory(BytesView src, const U256& src_off, uint64_t mem_off,
                    uint64_t size) {
    for (uint64_t i = 0; i < size; ++i) {
      U256 pos = src_off + U256(i);
      uint8_t b = 0;
      if (pos.FitsUint64() && pos.low64() < src.size()) b = src[pos.low64()];
      memory_[mem_off + i] = b;
    }
  }

  // ---- Sub-calls (bodies below) ----
  bool DoCall(Opcode op);
  bool DoCreate(Opcode op);

  Evm* evm_;
  state::StateView* world_;
  Address self_;
  Address caller_;
  U256 value_;
  Bytes data_;
  uint64_t gas_;
  bool is_static_;
  int depth_;
  TraceHook* hook_;

  Bytes code_;
  std::vector<bool> jumpdests_;
  std::vector<U256> stack_;
  Bytes memory_;
  Bytes return_data_;
  Bytes output_;
  std::vector<LogEntry> logs_;
  uint64_t refund_ = 0;
  size_t pc_ = 0;
  Outcome pending_halt_ = Outcome::kSuccess;
  bool halted_ = false;

  friend class ::onoff::evm::Evm;
};

ExecResult Interpreter::Run() {
  const std::array<obs::Counter*, 256>* op_counters = OpcodeCounters();
  while (pc_ < code_.size()) {
    uint8_t op_byte = code_[pc_];
    if (op_counters != nullptr) (*op_counters)[op_byte]->Inc();
    const OpcodeInfo& info = GetOpcodeInfo(op_byte);
    if (hook_ != nullptr) {
      // Observed before execution (and before validity checks, so invalid
      // instructions still appear in the structLog, like geth).
      StepContext step;
      step.pc = pc_;
      step.opcode = op_byte;
      step.op_name = info.name.data();
      step.gas = gas_;
      step.depth = depth_;
      step.stack = &stack_;
      step.memory_size = memory_.size();
      hook_->OnStep(step);
    }
    if (!info.defined || op_byte == static_cast<uint8_t>(Opcode::INVALID)) {
      return Halt(Outcome::kInvalidInstruction);
    }
    if (stack_.size() < info.stack_in) return Halt(Outcome::kStackUnderflow);
    if (stack_.size() - info.stack_in + info.stack_out > gas::kMaxStack) {
      return Halt(Outcome::kStackOverflow);
    }
    Opcode op = static_cast<Opcode>(op_byte);
    size_t next_pc = pc_ + 1 + info.immediate_size;

    // PUSH / DUP / SWAP / LOG families first.
    if (IsPush(op_byte)) {
      if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
      int n = PushSize(op_byte);
      U256 v;
      for (int i = 0; i < n; ++i) {
        uint8_t b = pc_ + 1 + i < code_.size() ? code_[pc_ + 1 + i] : 0;
        v = (v << 8) | U256(b);
      }
      Push(v);
      pc_ = next_pc;
      continue;
    }
    if (op_byte >= 0x80 && op_byte <= 0x8f) {  // DUPn
      if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
      int n = op_byte - 0x7f;
      Push(stack_[stack_.size() - n]);
      pc_ = next_pc;
      continue;
    }
    if (op_byte >= 0x90 && op_byte <= 0x9f) {  // SWAPn
      if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
      int n = op_byte - 0x8f;
      std::swap(stack_[stack_.size() - 1], stack_[stack_.size() - 1 - n]);
      pc_ = next_pc;
      continue;
    }
    if (op_byte >= 0xa0 && op_byte <= 0xa4) {  // LOGn
      if (is_static_) return Halt(Outcome::kStaticViolation);
      int topics = op_byte - 0xa0;
      U256 off, size;
      Pop(&off);
      Pop(&size);
      std::vector<U256> topic_vals(topics);
      for (int i = 0; i < topics; ++i) Pop(&topic_vals[i]);
      uint64_t o = 0, s = 0;
      if (!Expand(off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
      uint64_t cost = gas::kLog + gas::kLogTopic * topics + gas::kLogData * s;
      if (!UseGas(cost)) return Halt(Outcome::kOutOfGas);
      LogEntry entry;
      entry.address = self_;
      entry.topics = std::move(topic_vals);
      entry.data.assign(memory_.begin() + o, memory_.begin() + o + s);
      logs_.push_back(std::move(entry));
      pc_ = next_pc;
      continue;
    }

    switch (op) {
      case Opcode::STOP:
        return Halt(Outcome::kSuccess);

      // ---- Arithmetic ----
      case Opcode::ADD: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(a + b);
        break;
      }
      case Opcode::MUL: {
        if (!UseGas(gas::kLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(a * b);
        break;
      }
      case Opcode::SUB: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(a - b);
        break;
      }
      case Opcode::DIV: {
        if (!UseGas(gas::kLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(a / b);
        break;
      }
      case Opcode::SDIV: {
        if (!UseGas(gas::kLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(a.SDiv(b));
        break;
      }
      case Opcode::MOD: {
        if (!UseGas(gas::kLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(a % b);
        break;
      }
      case Opcode::SMOD: {
        if (!UseGas(gas::kLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(a.SMod(b));
        break;
      }
      case Opcode::ADDMOD: {
        if (!UseGas(gas::kMid)) return Halt(Outcome::kOutOfGas);
        U256 a, b, m;
        Pop(&a);
        Pop(&b);
        Pop(&m);
        Push(U256::AddMod(a, b, m));
        break;
      }
      case Opcode::MULMOD: {
        if (!UseGas(gas::kMid)) return Halt(Outcome::kOutOfGas);
        U256 a, b, m;
        Pop(&a);
        Pop(&b);
        Pop(&m);
        Push(U256::MulMod(a, b, m));
        break;
      }
      case Opcode::EXP: {
        U256 base, exp;
        Pop(&base);
        Pop(&exp);
        uint64_t exp_bytes = (exp.BitLength() + 7) / 8;
        if (!UseGas(gas::kExp + gas::kExpByte * exp_bytes)) {
          return Halt(Outcome::kOutOfGas);
        }
        Push(base.Exp(exp));
        break;
      }
      case Opcode::SIGNEXTEND: {
        if (!UseGas(gas::kLow)) return Halt(Outcome::kOutOfGas);
        U256 index, v;
        Pop(&index);
        Pop(&v);
        if (index.FitsUint64() && index.low64() < 31) {
          Push(v.SignExtend(static_cast<unsigned>(index.low64())));
        } else {
          Push(v);
        }
        break;
      }

      // ---- Comparison / bitwise ----
      case Opcode::LT: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(U256(a < b ? 1 : 0));
        break;
      }
      case Opcode::GT: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(U256(a > b ? 1 : 0));
        break;
      }
      case Opcode::SLT: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(U256(a.SLess(b) ? 1 : 0));
        break;
      }
      case Opcode::SGT: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(U256(b.SLess(a) ? 1 : 0));
        break;
      }
      case Opcode::EQ: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(U256(a == b ? 1 : 0));
        break;
      }
      case Opcode::ISZERO: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a;
        Pop(&a);
        Push(U256(a.IsZero() ? 1 : 0));
        break;
      }
      case Opcode::AND: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(a & b);
        break;
      }
      case Opcode::OR: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(a | b);
        break;
      }
      case Opcode::XOR: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a, b;
        Pop(&a);
        Pop(&b);
        Push(a ^ b);
        break;
      }
      case Opcode::NOT: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 a;
        Pop(&a);
        Push(~a);
        break;
      }
      case Opcode::BYTE: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 index, v;
        Pop(&index);
        Pop(&v);
        if (index.FitsUint64() && index.low64() < 32) {
          auto be = v.ToBigEndian();
          Push(U256(be[index.low64()]));
        } else {
          Push(U256());
        }
        break;
      }
      case Opcode::SHL: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 shift, v;
        Pop(&shift);
        Pop(&v);
        Push(shift >= U256(256) ? U256()
                                : v << static_cast<unsigned>(shift.low64()));
        break;
      }
      case Opcode::SHR: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 shift, v;
        Pop(&shift);
        Pop(&v);
        Push(shift >= U256(256) ? U256()
                                : v >> static_cast<unsigned>(shift.low64()));
        break;
      }
      case Opcode::SAR: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 shift, v;
        Pop(&shift);
        Pop(&v);
        unsigned n = shift >= U256(256) ? 256u
                                        : static_cast<unsigned>(shift.low64());
        Push(v.Sar(n));
        break;
      }

      case Opcode::SHA3: {
        U256 off, size;
        Pop(&off);
        Pop(&size);
        uint64_t o = 0, s = 0;
        if (!Expand(off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kSha3 + gas::kSha3Word * gas::ToWords(s))) {
          return Halt(Outcome::kOutOfGas);
        }
        Hash32 h = Keccak256(BytesView(memory_.data() + o, s));
        Push(U256::FromBigEndianTruncating(BytesView(h.data(), h.size())));
        break;
      }

      // ---- Environment ----
      case Opcode::ADDRESS:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(self_.ToWord());
        break;
      case Opcode::BALANCE: {
        if (!UseGas(gas::kBalance)) return Halt(Outcome::kOutOfGas);
        U256 a;
        Pop(&a);
        Push(world_->GetBalance(Address::FromWord(a)));
        break;
      }
      case Opcode::ORIGIN:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(evm_->tx_.origin.ToWord());
        break;
      case Opcode::CALLER:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(caller_.ToWord());
        break;
      case Opcode::CALLVALUE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(value_);
        break;
      case Opcode::CALLDATALOAD: {
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        U256 off;
        Pop(&off);
        U256 v;
        for (int i = 0; i < 32; ++i) {
          U256 pos = off + U256(static_cast<uint64_t>(i));
          uint8_t b = 0;
          if (pos.FitsUint64() && pos.low64() < data_.size()) {
            b = data_[pos.low64()];
          }
          v = (v << 8) | U256(b);
        }
        Push(v);
        break;
      }
      case Opcode::CALLDATASIZE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(U256(data_.size()));
        break;
      case Opcode::CALLDATACOPY:
      case Opcode::CODECOPY:
      case Opcode::RETURNDATACOPY: {
        U256 mem_off, src_off, size;
        Pop(&mem_off);
        Pop(&src_off);
        Pop(&size);
        uint64_t o = 0, s = 0;
        if (!Expand(mem_off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow + gas::kCopy * gas::ToWords(s))) {
          return Halt(Outcome::kOutOfGas);
        }
        const Bytes& src = op == Opcode::CALLDATACOPY   ? data_
                           : op == Opcode::CODECOPY     ? code_
                                                        : return_data_;
        if (op == Opcode::RETURNDATACOPY) {
          // Reading past RETURNDATA is an exceptional halt (EIP-211).
          U256 end = src_off + size;
          if (!end.FitsUint64() || end.low64() > src.size()) {
            return Halt(Outcome::kOutOfGas);
          }
        }
        CopyToMemory(src, src_off, o, s);
        break;
      }
      case Opcode::CODESIZE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(U256(code_.size()));
        break;
      case Opcode::GASPRICE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(evm_->tx_.gas_price);
        break;
      case Opcode::EXTCODESIZE: {
        if (!UseGas(gas::kExtCode)) return Halt(Outcome::kOutOfGas);
        U256 a;
        Pop(&a);
        Push(U256(world_->GetCode(Address::FromWord(a)).size()));
        break;
      }
      case Opcode::EXTCODECOPY: {
        U256 addr_word, mem_off, src_off, size;
        Pop(&addr_word);
        Pop(&mem_off);
        Pop(&src_off);
        Pop(&size);
        uint64_t o = 0, s = 0;
        if (!Expand(mem_off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kExtCode + gas::kCopy * gas::ToWords(s))) {
          return Halt(Outcome::kOutOfGas);
        }
        CopyToMemory(world_->GetCode(Address::FromWord(addr_word)), src_off, o,
                     s);
        break;
      }
      case Opcode::RETURNDATASIZE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(U256(return_data_.size()));
        break;

      // ---- Block ----
      case Opcode::BLOCKHASH: {
        if (!UseGas(gas::kBlockhash)) return Halt(Outcome::kOutOfGas);
        U256 num;
        Pop(&num);
        Hash32 h{};
        const BlockContext& blk = evm_->block_;
        if (blk.block_hash && num.FitsUint64() && num.low64() < blk.number &&
            num.low64() + 256 >= blk.number) {
          h = blk.block_hash(num.low64());
        }
        Push(U256::FromBigEndianTruncating(BytesView(h.data(), h.size())));
        break;
      }
      case Opcode::COINBASE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(evm_->block_.coinbase.ToWord());
        break;
      case Opcode::TIMESTAMP:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(U256(evm_->block_.timestamp));
        break;
      case Opcode::NUMBER:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(U256(evm_->block_.number));
        break;
      case Opcode::DIFFICULTY:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(evm_->block_.difficulty);
        break;
      case Opcode::GASLIMIT:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(U256(evm_->block_.gas_limit));
        break;

      // ---- Stack / memory / storage / control ----
      case Opcode::POP: {
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        U256 dummy;
        Pop(&dummy);
        break;
      }
      case Opcode::MLOAD: {
        U256 off;
        Pop(&off);
        uint64_t o = 0, s = 0;
        if (!Expand(off, U256(32), &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        Push(LoadWord(o));
        break;
      }
      case Opcode::MSTORE: {
        U256 off, v;
        Pop(&off);
        Pop(&v);
        uint64_t o = 0, s = 0;
        if (!Expand(off, U256(32), &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        StoreWord(o, v);
        break;
      }
      case Opcode::MSTORE8: {
        U256 off, v;
        Pop(&off);
        Pop(&v);
        uint64_t o = 0, s = 0;
        if (!Expand(off, U256(1), &o, &s)) return Halt(Outcome::kOutOfGas);
        if (!UseGas(gas::kVeryLow)) return Halt(Outcome::kOutOfGas);
        memory_[o] = static_cast<uint8_t>(v.low64() & 0xff);
        break;
      }
      case Opcode::SLOAD: {
        if (!UseGas(gas::kSload)) return Halt(Outcome::kOutOfGas);
        U256 key;
        Pop(&key);
        Push(world_->GetStorage(self_, key));
        break;
      }
      case Opcode::SSTORE: {
        if (is_static_) return Halt(Outcome::kStaticViolation);
        U256 key, value;
        Pop(&key);
        Pop(&value);
        U256 current = world_->GetStorage(self_, key);
        uint64_t cost = gas::kSstoreReset;
        if (current.IsZero() && !value.IsZero()) cost = gas::kSstoreSet;
        if (!current.IsZero() && value.IsZero()) refund_ += gas::kSstoreRefund;
        if (!UseGas(cost)) return Halt(Outcome::kOutOfGas);
        world_->SetStorage(self_, key, value);
        break;
      }
      case Opcode::JUMP: {
        if (!UseGas(gas::kMid)) return Halt(Outcome::kOutOfGas);
        U256 dest;
        Pop(&dest);
        if (!dest.FitsUint64() || dest.low64() >= code_.size() ||
            !jumpdests_[dest.low64()]) {
          return Halt(Outcome::kBadJumpDestination);
        }
        pc_ = dest.low64();
        continue;
      }
      case Opcode::JUMPI: {
        if (!UseGas(gas::kHigh)) return Halt(Outcome::kOutOfGas);
        U256 dest, cond;
        Pop(&dest);
        Pop(&cond);
        if (!cond.IsZero()) {
          if (!dest.FitsUint64() || dest.low64() >= code_.size() ||
              !jumpdests_[dest.low64()]) {
            return Halt(Outcome::kBadJumpDestination);
          }
          pc_ = dest.low64();
          continue;
        }
        break;
      }
      case Opcode::PC:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(U256(pc_));
        break;
      case Opcode::MSIZE:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(U256(memory_.size()));
        break;
      case Opcode::GAS:
        if (!UseGas(gas::kBase)) return Halt(Outcome::kOutOfGas);
        Push(U256(gas_));
        break;
      case Opcode::JUMPDEST:
        if (!UseGas(gas::kJumpdest)) return Halt(Outcome::kOutOfGas);
        break;

      // ---- System ----
      case Opcode::CREATE:
      case Opcode::CREATE2:
        if (!DoCreate(op)) return Halt(pending_halt_);
        break;
      case Opcode::CALL:
      case Opcode::CALLCODE:
      case Opcode::DELEGATECALL:
      case Opcode::STATICCALL:
        if (!DoCall(op)) return Halt(pending_halt_);
        break;
      case Opcode::RETURN: {
        U256 off, size;
        Pop(&off);
        Pop(&size);
        uint64_t o = 0, s = 0;
        if (!Expand(off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
        output_.assign(memory_.begin() + o, memory_.begin() + o + s);
        return Halt(Outcome::kSuccess);
      }
      case Opcode::REVERT: {
        U256 off, size;
        Pop(&off);
        Pop(&size);
        uint64_t o = 0, s = 0;
        if (!Expand(off, size, &o, &s)) return Halt(Outcome::kOutOfGas);
        output_.assign(memory_.begin() + o, memory_.begin() + o + s);
        return Halt(Outcome::kRevert);
      }
      case Opcode::SELFDESTRUCT: {
        if (is_static_) return Halt(Outcome::kStaticViolation);
        U256 beneficiary_word;
        Pop(&beneficiary_word);
        Address beneficiary = Address::FromWord(beneficiary_word);
        uint64_t cost = gas::kSelfdestruct;
        U256 balance = world_->GetBalance(self_);
        if (!world_->Exists(beneficiary) && !balance.IsZero()) {
          cost += gas::kCallNewAccount;
        }
        if (!UseGas(cost)) return Halt(Outcome::kOutOfGas);
        refund_ += gas::kSelfdestructRefund;
        world_->AddBalance(beneficiary, balance);
        world_->DeleteAccount(self_);
        return Halt(Outcome::kSuccess);
      }
      default:
        return Halt(Outcome::kInvalidInstruction);
    }
    pc_ = next_pc;
  }
  return Halt(Outcome::kSuccess);
}

bool Interpreter::DoCall(Opcode op) {
  U256 gas_req, to_word, value;
  Pop(&gas_req);
  Pop(&to_word);
  if (op == Opcode::CALL || op == Opcode::CALLCODE) {
    Pop(&value);
  }
  U256 in_off, in_size, out_off, out_size;
  Pop(&in_off);
  Pop(&in_size);
  Pop(&out_off);
  Pop(&out_size);

  Address to = Address::FromWord(to_word);

  if (op == Opcode::CALL && is_static_ && !value.IsZero()) {
    pending_halt_ = Outcome::kStaticViolation;
    return false;
  }

  uint64_t in_o = 0, in_s = 0, out_o = 0, out_s = 0;
  if (!Expand(in_off, in_size, &in_o, &in_s) ||
      !Expand(out_off, out_size, &out_o, &out_s)) {
    pending_halt_ = Outcome::kOutOfGas;
    return false;
  }

  uint64_t base_cost = gas::kCall;
  if ((op == Opcode::CALL || op == Opcode::CALLCODE) && !value.IsZero()) {
    base_cost += gas::kCallValue;
  }
  if (op == Opcode::CALL && !value.IsZero() && !world_->Exists(to)) {
    base_cost += gas::kCallNewAccount;
  }
  if (!UseGas(base_cost)) {
    pending_halt_ = Outcome::kOutOfGas;
    return false;
  }

  // EIP-150: forward at most all-but-one-64th.
  uint64_t max_forward = gas_ - gas_ / 64;
  uint64_t forwarded = gas_req.FitsUint64()
                           ? std::min(gas_req.low64(), max_forward)
                           : max_forward;
  gas_ -= forwarded;
  uint64_t stipend = 0;
  if ((op == Opcode::CALL || op == Opcode::CALLCODE) && !value.IsZero()) {
    stipend = gas::kCallStipend;
  }

  Bytes input(memory_.begin() + in_o, memory_.begin() + in_o + in_s);

  ExecResult child;
  switch (op) {
    case Opcode::CALL: {
      CallMessage msg;
      msg.caller = self_;
      msg.to = to;
      msg.value = value;
      msg.data = std::move(input);
      msg.gas = forwarded + stipend;
      msg.is_static = is_static_;
      child = evm_->CallInternal(msg, depth_ + 1);
      break;
    }
    case Opcode::STATICCALL: {
      CallMessage msg;
      msg.caller = self_;
      msg.to = to;
      msg.value = U256();
      msg.data = std::move(input);
      msg.gas = forwarded;
      msg.is_static = true;
      child = evm_->CallInternal(msg, depth_ + 1);
      break;
    }
    case Opcode::CALLCODE:
    case Opcode::DELEGATECALL: {
      // Run the target's code in OUR storage context.
      if (depth_ + 1 > gas::kMaxCallDepth) {
        child.outcome = Outcome::kCallDepthExceeded;
        child.gas_left = forwarded + stipend;
        break;
      }
      if (op == Opcode::CALLCODE && world_->GetBalance(self_) < value) {
        child.outcome = Outcome::kInsufficientBalance;
        child.gas_left = forwarded + stipend;
        break;
      }
      FrameContext frame;
      if (hook_ != nullptr) {
        frame.kind = op == Opcode::DELEGATECALL ? "DELEGATECALL" : "CALLCODE";
        frame.depth = depth_ + 1;
        frame.self = self_;
        frame.code_address = to;
        frame.caller = op == Opcode::DELEGATECALL ? caller_ : self_;
        frame.value = op == Opcode::DELEGATECALL ? value_ : value;
        frame.gas = forwarded + stipend;
        frame.input_size = input.size();
      }
      FrameScope frame_scope(hook_, frame, &child);
      auto snapshot = world_->TakeSnapshot();
      if (auto pre = RunPrecompile(to, input, forwarded + stipend)) {
        child.outcome = pre->success ? Outcome::kSuccess : Outcome::kOutOfGas;
        child.output = std::move(pre->output);
        child.gas_left = pre->success ? forwarded + stipend - pre->gas_cost : 0;
      } else {
        Interpreter sub(evm_, to, self_,
                        op == Opcode::DELEGATECALL ? caller_ : self_,
                        op == Opcode::DELEGATECALL ? value_ : value,
                        std::move(input), forwarded + stipend, is_static_,
                        depth_ + 1);
        child = sub.Run();
      }
      if (!child.ok()) world_->RevertToSnapshot(snapshot);
      break;
    }
    default:
      pending_halt_ = Outcome::kInvalidInstruction;
      return false;
  }

  // Copy return data into the out region; record it for RETURNDATACOPY.
  return_data_ = child.output;
  uint64_t copy = std::min<uint64_t>(out_s, child.output.size());
  if (copy > 0) {
    std::copy(child.output.begin(), child.output.begin() + copy,
              memory_.begin() + out_o);
  }
  gas_ += child.gas_left;
  if (child.ok()) {
    refund_ += child.refund;
    for (auto& log : child.logs) logs_.push_back(std::move(log));
  }
  Push(U256(child.ok() ? 1 : 0));
  return true;
}

bool Interpreter::DoCreate(Opcode op) {
  if (is_static_) {
    pending_halt_ = Outcome::kStaticViolation;
    return false;
  }
  U256 value, off, size, salt;
  Pop(&value);
  Pop(&off);
  Pop(&size);
  if (op == Opcode::CREATE2) Pop(&salt);

  uint64_t o = 0, s = 0;
  if (!Expand(off, size, &o, &s)) {
    pending_halt_ = Outcome::kOutOfGas;
    return false;
  }
  uint64_t cost = gas::kCreate;
  if (op == Opcode::CREATE2) cost += gas::kSha3Word * gas::ToWords(s);
  if (!UseGas(cost)) {
    pending_halt_ = Outcome::kOutOfGas;
    return false;
  }
  Bytes init_code(memory_.begin() + o, memory_.begin() + o + s);

  // EIP-150: all but one 64th.
  uint64_t forwarded = gas_ - gas_ / 64;
  gas_ -= forwarded;

  ExecResult child = evm_->CreateInternal(
      self_, value, init_code, forwarded,
      op == Opcode::CREATE2 ? &salt : nullptr, depth_ + 1);

  return_data_ = child.ok() ? Bytes{} : child.output;
  gas_ += child.gas_left;
  if (child.ok()) {
    refund_ += child.refund;
    for (auto& log : child.logs) logs_.push_back(std::move(log));
    Push(child.created.ToWord());
  } else {
    Push(U256());
  }
  return true;
}

Address Evm::ContractAddress(const Address& creator, uint64_t nonce) {
  std::vector<rlp::Item> fields;
  fields.push_back(rlp::Item::String(creator.view()));
  fields.push_back(rlp::Item::Scalar(nonce));
  Bytes enc = rlp::Encode(rlp::Item::List(std::move(fields)));
  Hash32 h = Keccak256(enc);
  auto addr = Address::FromBytes(BytesView(h.data() + 12, 20));
  assert(addr.ok());
  return *addr;
}

Address Evm::Create2Address(const Address& creator, const U256& salt,
                            const Bytes& init_code) {
  Hash32 code_hash = Keccak256(init_code);
  Bytes preimage;
  preimage.push_back(0xff);
  Append(preimage, creator.view());
  Bytes salt_bytes = salt.ToBytes();
  Append(preimage, salt_bytes);
  Append(preimage, BytesView(code_hash.data(), code_hash.size()));
  Hash32 h = Keccak256(preimage);
  auto addr = Address::FromBytes(BytesView(h.data() + 12, 20));
  assert(addr.ok());
  return *addr;
}

ExecResult Evm::Call(const CallMessage& msg) {
  static obs::Counter* calls = obs::GetCounterOrNull("evm.calls");
  static obs::Histogram* call_gas =
      obs::GetHistogramOrNull("evm.call_gas", obs::DefaultGasBuckets());
  ExecResult res = CallInternal(msg, 0);
  if (calls != nullptr) calls->Inc();
  if (call_gas != nullptr) {
    call_gas->Observe(static_cast<double>(msg.gas - res.gas_left));
  }
  return res;
}

ExecResult Evm::Create(const Address& caller, const U256& value,
                       const Bytes& init_code, uint64_t gas) {
  static obs::Counter* creates = obs::GetCounterOrNull("evm.creates");
  static obs::Histogram* create_gas =
      obs::GetHistogramOrNull("evm.create_gas", obs::DefaultGasBuckets());
  ExecResult res = CreateInternal(caller, value, init_code, gas, nullptr, 0);
  if (creates != nullptr) creates->Inc();
  if (create_gas != nullptr) {
    create_gas->Observe(static_cast<double>(gas - res.gas_left));
  }
  return res;
}

ExecResult Evm::CallInternal(const CallMessage& msg, int depth) {
  ExecResult res;
  if (depth > gas::kMaxCallDepth) {
    res.outcome = Outcome::kCallDepthExceeded;
    res.gas_left = msg.gas;
    return res;
  }
  if (world_->GetBalance(msg.caller) < msg.value) {
    res.outcome = Outcome::kInsufficientBalance;
    res.gas_left = msg.gas;
    return res;
  }

  FrameContext frame;
  if (trace_hook_ != nullptr) {
    frame.kind = IsPrecompile(msg.to)                ? "PRECOMPILE"
                 : world_->GetCode(msg.to).empty()   ? "TRANSFER"
                 : msg.is_static                     ? "STATICCALL"
                                                     : "CALL";
    frame.depth = depth;
    frame.self = msg.to;
    frame.code_address = msg.to;
    frame.caller = msg.caller;
    frame.value = msg.value;
    frame.gas = msg.gas;
    frame.input_size = msg.data.size();
  }
  FrameScope frame_scope(trace_hook_, frame, &res);

  auto snapshot = world_->TakeSnapshot();
  if (!msg.value.IsZero()) {
    Status st = world_->Transfer(msg.caller, msg.to, msg.value);
    assert(st.ok());
    (void)st;
  }

  if (auto pre = RunPrecompile(msg.to, msg.data, msg.gas)) {
    if (pre->success) {
      res.outcome = Outcome::kSuccess;
      res.output = std::move(pre->output);
      res.gas_left = msg.gas - pre->gas_cost;
    } else {
      res.outcome = Outcome::kOutOfGas;
      world_->RevertToSnapshot(snapshot);
    }
    return res;
  }

  const Bytes& code = world_->GetCode(msg.to);
  if (code.empty()) {
    // Plain transfer.
    res.outcome = Outcome::kSuccess;
    res.gas_left = msg.gas;
    return res;
  }

  Interpreter interp(this, msg.to, msg.to, msg.caller, msg.value, msg.data,
                     msg.gas, msg.is_static, depth);
  res = interp.Run();
  if (!res.ok()) world_->RevertToSnapshot(snapshot);
  return res;
}

ExecResult Evm::CreateInternal(const Address& caller, const U256& value,
                               const Bytes& init_code, uint64_t gas,
                               const U256* salt, int depth) {
  ExecResult res;
  if (depth > gas::kMaxCallDepth) {
    res.outcome = Outcome::kCallDepthExceeded;
    res.gas_left = gas;
    return res;
  }
  if (world_->GetBalance(caller) < value) {
    res.outcome = Outcome::kInsufficientBalance;
    res.gas_left = gas;
    return res;
  }

  uint64_t nonce = world_->GetNonce(caller);
  Address new_addr = salt != nullptr
                         ? Create2Address(caller, *salt, init_code)
                         : ContractAddress(caller, nonce);
  world_->IncrementNonce(caller);

  // Address collision (existing code or nonce) is an exceptional failure.
  if (!world_->GetCode(new_addr).empty() || world_->GetNonce(new_addr) != 0) {
    res.outcome = Outcome::kInvalidInstruction;
    return res;
  }

  FrameContext frame;
  if (trace_hook_ != nullptr) {
    frame.kind = salt != nullptr ? "CREATE2" : "CREATE";
    frame.depth = depth;
    frame.self = new_addr;
    frame.code_address = new_addr;
    frame.caller = caller;
    frame.value = value;
    frame.gas = gas;
    frame.input_size = init_code.size();
  }
  FrameScope frame_scope(trace_hook_, frame, &res);

  auto snapshot = world_->TakeSnapshot();
  world_->CreateAccount(new_addr);
  world_->SetNonce(new_addr, 1);  // EIP-161
  if (!value.IsZero()) {
    Status st = world_->Transfer(caller, new_addr, value);
    assert(st.ok());
    (void)st;
  }

  Interpreter interp(this, new_addr, new_addr, caller, value, Bytes{}, gas,
                     /*is_static=*/false, depth, &init_code);
  ExecResult init_res = interp.Run();

  if (init_res.outcome == Outcome::kRevert) {
    world_->RevertToSnapshot(snapshot);
    init_res.created = Address();
    res = std::move(init_res);
    return res;
  }
  if (!init_res.ok()) {
    world_->RevertToSnapshot(snapshot);
    res = std::move(init_res);
    return res;
  }

  // Deposit the returned runtime code.
  const Bytes& deployed = init_res.output;
  if (deployed.size() > gas::kMaxCodeSize) {
    world_->RevertToSnapshot(snapshot);
    res.outcome = Outcome::kCodeSizeExceeded;
    return res;
  }
  uint64_t deposit_cost = gas::kCodeDeposit * deployed.size();
  if (init_res.gas_left < deposit_cost) {
    world_->RevertToSnapshot(snapshot);
    res.outcome = Outcome::kOutOfGas;
    return res;
  }
  world_->SetCode(new_addr, deployed);

  res.outcome = Outcome::kSuccess;
  res.gas_left = init_res.gas_left - deposit_cost;
  res.refund = init_res.refund;
  res.logs = std::move(init_res.logs);
  res.created = new_addr;
  return res;
}

}  // namespace onoff::evm
