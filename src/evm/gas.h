// The Ethereum gas schedule (Byzantium/Constantinople values — the fee
// regime in force on Kovan when the paper ran its evaluation). Reproducing
// Table II depends on these constants, so they follow the Yellow Paper names.

#ifndef ONOFFCHAIN_EVM_GAS_H_
#define ONOFFCHAIN_EVM_GAS_H_

#include <cstdint>

namespace onoff::evm::gas {

// Transaction-level.
inline constexpr uint64_t kTx = 21000;            // G_transaction
inline constexpr uint64_t kTxCreate = 32000;      // G_txcreate (create tx)
inline constexpr uint64_t kTxDataZero = 4;        // per zero calldata byte
inline constexpr uint64_t kTxDataNonZero = 68;    // per non-zero calldata byte

// Opcode tiers.
inline constexpr uint64_t kZero = 0;
inline constexpr uint64_t kBase = 2;
inline constexpr uint64_t kVeryLow = 3;
inline constexpr uint64_t kLow = 5;
inline constexpr uint64_t kMid = 8;
inline constexpr uint64_t kHigh = 10;

// Specific operations.
inline constexpr uint64_t kExp = 10;
inline constexpr uint64_t kExpByte = 50;          // EIP-160
inline constexpr uint64_t kSha3 = 30;
inline constexpr uint64_t kSha3Word = 6;
inline constexpr uint64_t kBalance = 400;         // EIP-150
inline constexpr uint64_t kExtCode = 700;         // EIP-150
inline constexpr uint64_t kSload = 200;           // EIP-150
inline constexpr uint64_t kSstoreSet = 20000;     // zero -> non-zero
inline constexpr uint64_t kSstoreReset = 5000;    // non-zero -> any
inline constexpr uint64_t kSstoreRefund = 15000;  // non-zero -> zero refund
inline constexpr uint64_t kJumpdest = 1;
inline constexpr uint64_t kBlockhash = 20;
inline constexpr uint64_t kLog = 375;
inline constexpr uint64_t kLogTopic = 375;
inline constexpr uint64_t kLogData = 8;           // per byte
inline constexpr uint64_t kCopy = 3;              // per word copied

// Calls and creation.
inline constexpr uint64_t kCall = 700;            // EIP-150
inline constexpr uint64_t kCallValue = 9000;
inline constexpr uint64_t kCallStipend = 2300;
inline constexpr uint64_t kCallNewAccount = 25000;
inline constexpr uint64_t kCreate = 32000;
inline constexpr uint64_t kCodeDeposit = 200;     // per byte of deployed code
inline constexpr uint64_t kSelfdestruct = 5000;
inline constexpr uint64_t kSelfdestructRefund = 24000;

// Memory.
inline constexpr uint64_t kMemory = 3;            // per word
inline constexpr uint64_t kQuadCoeffDiv = 512;    // word^2 / 512

// Precompile pricing.
inline constexpr uint64_t kEcrecover = 3000;
inline constexpr uint64_t kSha256Base = 60;
inline constexpr uint64_t kSha256Word = 12;
inline constexpr uint64_t kRipemd160Base = 600;
inline constexpr uint64_t kRipemd160Word = 120;
inline constexpr uint64_t kIdentityBase = 15;
inline constexpr uint64_t kIdentityWord = 3;

// Limits.
inline constexpr int kMaxCallDepth = 1024;
inline constexpr size_t kMaxStack = 1024;
inline constexpr size_t kMaxCodeSize = 24576;     // EIP-170

// Total memory-expansion cost up to `words`.
inline constexpr uint64_t MemoryCost(uint64_t words) {
  return kMemory * words + words * words / kQuadCoeffDiv;
}

// Ceil-div bytes to 32-byte words.
inline constexpr uint64_t ToWords(uint64_t bytes) { return (bytes + 31) / 32; }

}  // namespace onoff::evm::gas

#endif  // ONOFFCHAIN_EVM_GAS_H_
