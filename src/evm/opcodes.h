// EVM opcode set (Byzantium/Constantinople era, matching the paper's 2019
// Kovan deployment target) plus per-opcode metadata used by the interpreter,
// assembler and disassembler.

#ifndef ONOFFCHAIN_EVM_OPCODES_H_
#define ONOFFCHAIN_EVM_OPCODES_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace onoff::evm {

enum class Opcode : uint8_t {
  // 0x0* - arithmetic
  STOP = 0x00,
  ADD = 0x01,
  MUL = 0x02,
  SUB = 0x03,
  DIV = 0x04,
  SDIV = 0x05,
  MOD = 0x06,
  SMOD = 0x07,
  ADDMOD = 0x08,
  MULMOD = 0x09,
  EXP = 0x0a,
  SIGNEXTEND = 0x0b,
  // 0x1* - comparison / bitwise
  LT = 0x10,
  GT = 0x11,
  SLT = 0x12,
  SGT = 0x13,
  EQ = 0x14,
  ISZERO = 0x15,
  AND = 0x16,
  OR = 0x17,
  XOR = 0x18,
  NOT = 0x19,
  BYTE = 0x1a,
  SHL = 0x1b,
  SHR = 0x1c,
  SAR = 0x1d,
  // 0x20
  SHA3 = 0x20,
  // 0x3* - environment
  ADDRESS = 0x30,
  BALANCE = 0x31,
  ORIGIN = 0x32,
  CALLER = 0x33,
  CALLVALUE = 0x34,
  CALLDATALOAD = 0x35,
  CALLDATASIZE = 0x36,
  CALLDATACOPY = 0x37,
  CODESIZE = 0x38,
  CODECOPY = 0x39,
  GASPRICE = 0x3a,
  EXTCODESIZE = 0x3b,
  EXTCODECOPY = 0x3c,
  RETURNDATASIZE = 0x3d,
  RETURNDATACOPY = 0x3e,
  // 0x4* - block
  BLOCKHASH = 0x40,
  COINBASE = 0x41,
  TIMESTAMP = 0x42,
  NUMBER = 0x43,
  DIFFICULTY = 0x44,
  GASLIMIT = 0x45,
  // 0x5* - stack / memory / storage / control
  POP = 0x50,
  MLOAD = 0x51,
  MSTORE = 0x52,
  MSTORE8 = 0x53,
  SLOAD = 0x54,
  SSTORE = 0x55,
  JUMP = 0x56,
  JUMPI = 0x57,
  PC = 0x58,
  MSIZE = 0x59,
  GAS = 0x5a,
  JUMPDEST = 0x5b,
  // 0x60..0x7f - PUSH1..PUSH32
  PUSH1 = 0x60,
  PUSH32 = 0x7f,
  // 0x80..0x8f - DUP1..DUP16
  DUP1 = 0x80,
  DUP2 = 0x81,
  DUP3 = 0x82,
  DUP4 = 0x83,
  DUP16 = 0x8f,
  // 0x90..0x9f - SWAP1..SWAP16
  SWAP1 = 0x90,
  SWAP2 = 0x91,
  SWAP3 = 0x92,
  SWAP4 = 0x93,
  SWAP16 = 0x9f,
  // 0xa0..0xa4 - LOG0..LOG4
  LOG0 = 0xa0,
  LOG4 = 0xa4,
  // 0xf* - system
  CREATE = 0xf0,
  CALL = 0xf1,
  CALLCODE = 0xf2,
  RETURN = 0xf3,
  DELEGATECALL = 0xf4,
  CREATE2 = 0xf5,
  STATICCALL = 0xfa,
  REVERT = 0xfd,
  INVALID = 0xfe,
  SELFDESTRUCT = 0xff,
};

// Metadata for one opcode.
struct OpcodeInfo {
  std::string_view name;
  // Stack items consumed / produced.
  uint8_t stack_in;
  uint8_t stack_out;
  // Immediate data bytes following the opcode (PUSHn only).
  uint8_t immediate_size;
  bool defined;
  // Unconditionally ends the basic block: control never falls through to the
  // next instruction (STOP, JUMP, RETURN, REVERT, INVALID, SELFDESTRUCT).
  bool terminator;
};

// Returns the table entry for any byte (undefined opcodes have
// defined == false and name "INVALID").
const OpcodeInfo& GetOpcodeInfo(uint8_t op);

// Reverse lookup by mnemonic (e.g. "ADD", "PUSH3", "DUP2"); nullopt for
// unknown names.
std::optional<uint8_t> OpcodeFromName(std::string_view name);

inline bool IsPush(uint8_t op) { return op >= 0x60 && op <= 0x7f; }
inline int PushSize(uint8_t op) { return op - 0x5f; }  // valid for PUSHn
inline bool IsDup(uint8_t op) { return op >= 0x80 && op <= 0x8f; }
inline int DupDepth(uint8_t op) { return op - 0x7f; }  // valid for DUPn
inline bool IsSwap(uint8_t op) { return op >= 0x90 && op <= 0x9f; }
inline int SwapDepth(uint8_t op) { return op - 0x8f; }  // valid for SWAPn
inline bool IsLog(uint8_t op) { return op >= 0xa0 && op <= 0xa4; }
inline int LogTopics(uint8_t op) { return op - 0xa0; }  // valid for LOGn

}  // namespace onoff::evm

#endif  // ONOFFCHAIN_EVM_OPCODES_H_
