// The interpreter core behind Evm::Call/Create: one Interpreter per call
// frame, with two dispatch loops over the same frame state.
//
//  - RunSwitch: the reference loop — one switch over the raw bytecode with
//    per-instruction counter/validity/stack/gas checks. This is the
//    semantic ground truth; structLog tracing always runs here because the
//    hook observes every step.
//  - RunThreaded: executes the decoded cell stream from the
//    CodeAnalysisCache (analysis_cache.h) with per-basic-block hoisted
//    checks and, on GCC/Clang, computed-goto direct threading. Whenever a
//    hoisted check fails the frame is about to halt, so the loop re-enters
//    RunSwitch at the current pc and lets the reference loop produce the
//    exact outcome, gas and counters.
//
// The dispatch mode is selected per Evm (default: threaded with
// superinstruction fusion); see DispatchMode in evm.h.

#ifndef ONOFFCHAIN_EVM_INTERP_H_
#define ONOFFCHAIN_EVM_INTERP_H_

#include <array>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "evm/analysis_cache.h"
#include "evm/evm.h"
#include "evm/gas.h"
#include "evm/opcodes.h"
#include "evm/trace_hook.h"
#include "obs/metrics.h"
#include "support/bytes.h"
#include "support/u256.h"

namespace onoff::evm {

// Per-opcode execution counters ("evm.opcode.<MNEMONIC>"), built once on
// first use; nullptr when metrics are disabled so the interpreter loop pays
// a single never-taken branch per instruction.
const std::array<obs::Counter*, 256>* OpcodeCounters();

// Pairs OnFrameEnter (constructor) with OnFrameExit (destructor) around a
// frame body, so every exit path — including exceptional halts — reports the
// frame's final result exactly once. `result` must outlive the scope and
// hold the frame's outcome by the time the scope closes. When `hook` is
// null the scope costs two never-taken branches.
class FrameScope {
 public:
  FrameScope(TraceHook* hook, const FrameContext& frame,
             const ExecResult* result)
      : hook_(hook), frame_(frame), result_(result) {
    if (hook_ != nullptr) hook_->OnFrameEnter(frame_);
  }
  ~FrameScope() {
    if (hook_ != nullptr) {
      hook_->OnFrameExit(frame_, *result_, frame_.gas - result_->gas_left);
    }
  }
  FrameScope(const FrameScope&) = delete;
  FrameScope& operator=(const FrameScope&) = delete;

 private:
  TraceHook* hook_;
  const FrameContext& frame_;
  const ExecResult* result_;
};

// The operand stack: a fixed-capacity cache-aligned array with a
// one-past-top pointer, replacing std::vector<U256> so pushes and pops are
// single pointer bumps and binops can rewrite the top slot in place. The
// storage is left uninitialized (U256 is an implicit-lifetime type);
// capacity is exactly kMaxStack, and the interpreter's stack checks —
// per-instruction in the switch loop, per-block in the threaded loop —
// guarantee the Unsafe accessors stay in bounds.
class EvmStack {
 public:
  EvmStack()
      : base_(static_cast<U256*>(::operator new(
            sizeof(U256) * gas::kMaxStack, std::align_val_t{64}))),
        top_(base_) {}
  ~EvmStack() { ::operator delete(base_, std::align_val_t{64}); }
  EvmStack(const EvmStack&) = delete;
  EvmStack& operator=(const EvmStack&) = delete;

  size_t size() const { return static_cast<size_t>(top_ - base_); }
  bool empty() const { return top_ == base_; }

  // Bottom-first indexing (tracing and DUP in the reference loop).
  const U256& operator[](size_t i) const { return base_[i]; }
  const U256* data() const { return base_; }

  // `n`-th slot from the top, n = 0 being the top itself.
  U256& Peek(size_t n) { return *(top_ - 1 - n); }
  U256& Top() { return *(top_ - 1); }

  bool Push(const U256& v) {
    if (size() >= gas::kMaxStack) return false;
    *top_++ = v;
    return true;
  }
  bool Pop(U256* out) {
    if (top_ == base_) return false;
    *out = *--top_;
    return true;
  }

  // Unchecked fast paths for the threaded loop (bounds guaranteed by the
  // block-entry stack check).
  void PushUnsafe(const U256& v) { *top_++ = v; }
  U256 PopUnsafe() { return *--top_; }
  void Drop(size_t n) { top_ -= n; }

 private:
  U256* base_;
  U256* top_;
};

// One interpreter activation (a call frame).
class Interpreter {
 public:
  Interpreter(Evm* evm, Address code_addr, Address self, Address caller,
              U256 value, Bytes data, uint64_t gas, bool is_static, int depth,
              const Bytes* override_code = nullptr);

  ExecResult Run();

 private:
  // ---- Halting helpers ----
  ExecResult Halt(Outcome outcome) {
    ExecResult res;
    res.outcome = outcome;
    // Exceptional halts consume all remaining gas; REVERT/STOP keep it.
    if (outcome == Outcome::kSuccess || outcome == Outcome::kRevert) {
      res.gas_left = gas_;
    }
    if (outcome == Outcome::kSuccess) {
      res.refund = refund_;
      res.logs = std::move(logs_);
    }
    res.output = std::move(output_);
    return res;
  }

  // ---- Gas ----
  bool UseGas(uint64_t amount) {
    if (gas_ < amount) return false;
    gas_ -= amount;
    return true;
  }

  // ---- Memory ----
  // Charges expansion gas and resizes memory to cover [offset, offset+size).
  // Returns false on out-of-gas / absurd ranges. Size 0 never charges.
  bool Expand(const U256& offset, const U256& size, uint64_t* off_out,
              uint64_t* size_out);

  U256 LoadWord(uint64_t offset) {
    return U256::FromBigEndianTruncating(
        BytesView(memory_.data() + offset, 32));
  }
  void StoreWord(uint64_t offset, const U256& v);

  // Copies `size` bytes from src[src_off..] into memory at mem_off,
  // zero-padding reads past the end of src.
  void CopyToMemory(BytesView src, const U256& src_off, uint64_t mem_off,
                    uint64_t size);

  // ---- Dispatch loops ----
  // Reference loop, starting from the current pc_. Also the landing pad for
  // threaded-mode fallbacks.
  ExecResult RunSwitch();
  // Cell-stream loop over `analysis_`.
  ExecResult RunThreaded();
  // Credits the first `prefix_ops` opcodes of `blk` to the metrics
  // counters, then replays from `pc` on the reference loop (threaded-mode
  // hoisted-check failures and doomed blocks).
  ExecResult FallbackAt(size_t pc, const CodeBlock* blk, uint32_t prefix_ops);

  // ---- Sub-calls ----
  bool DoCall(Opcode op);
  bool DoCreate(Opcode op);

  Evm* evm_;
  state::StateView* world_;
  Address self_;
  Address caller_;
  U256 value_;
  Bytes data_;
  uint64_t gas_;
  bool is_static_;
  int depth_;
  TraceHook* hook_;

  Address code_addr_;
  bool has_override_ = false;
  Bytes code_;
  std::shared_ptr<const CodeAnalysis> analysis_;
  // Jumpdest bitmap the active loop validates against: the analysis' map in
  // threaded mode, a locally computed one otherwise.
  const std::vector<bool>* jumpdests_ = nullptr;
  std::vector<bool> own_jumpdests_;

  EvmStack stack_;
  Bytes memory_;
  Bytes return_data_;
  Bytes output_;
  std::vector<LogEntry> logs_;
  uint64_t refund_ = 0;
  size_t pc_ = 0;
  Outcome pending_halt_ = Outcome::kSuccess;
  bool halted_ = false;

  friend class ::onoff::evm::Evm;
};

}  // namespace onoff::evm

#endif  // ONOFFCHAIN_EVM_INTERP_H_
