// The four classic Ethereum precompiled contracts (addresses 0x1..0x4):
// ecrecover, sha256, ripemd160 and identity. `ecrecover` is the one the
// paper's deployVerifiedInstance() relies on to verify participants'
// signatures over the off-chain contract bytecode.

#ifndef ONOFFCHAIN_EVM_PRECOMPILES_H_
#define ONOFFCHAIN_EVM_PRECOMPILES_H_

#include <cstdint>
#include <optional>

#include "support/address.h"
#include "support/bytes.h"

namespace onoff::evm {

struct PrecompileResult {
  bool success = false;     // false = exceptional halt (consumes all gas)
  uint64_t gas_cost = 0;
  Bytes output;
};

// Returns true iff `addr` is a precompile address (0x1..0x4).
bool IsPrecompile(const Address& addr);

// Runs the precompile at `addr` on `input` with `gas` available. Returns
// nullopt if `addr` is not a precompile.
std::optional<PrecompileResult> RunPrecompile(const Address& addr,
                                              BytesView input, uint64_t gas);

}  // namespace onoff::evm

#endif  // ONOFFCHAIN_EVM_PRECOMPILES_H_
