// Memoized bytecode analysis for the EVM interpreter hot path.
//
// `Analyze` decodes a contract's bytecode once into (a) the classic
// jumpdest validity bitmap, (b) basic blocks carrying hoisted static gas
// and worst-case stack requirements, and (c) a flat instruction stream of
// fixed-size cells the threaded dispatcher (interp.cc) executes directly —
// including fused superinstructions for the sequences our easm codegen
// emits hottest (PUSH+JUMP, PUSH+JUMPI, DUP+MLOAD, PUSH+binop, and
// constant-folded PUSH+PUSH+binop).
//
// `CodeAnalysisCache` memoizes analyses process-wide, keyed by code hash:
// code is content-addressed, so entries never need invalidation — a
// redeploy at the same address has a different hash and simply misses.
// The cache is thread-safe (the PR 6 parallel executor hits it from every
// worker) and hands out shared_ptr<const ...> so entries stay alive across
// concurrent frames regardless of eviction.
//
// Exactness contract (see DESIGN.md §11 for the argument): executing the
// cell stream must be byte-identical to the reference switch interpreter
// in every observable — outcome, gas accounting, state, logs, output, and
// per-opcode metric totals. The two load-bearing rules are
//   1. gas is hoisted only across "simple" ops (fixed static cost, no
//      failure mode besides gas); every op that observes gas, charges
//      dynamic gas, or can fail for a non-gas reason is a *checkpoint*
//      whose handler replicates the switch sequence exactly, so remaining
//      gas at every checkpoint equals the switch interpreter's; and
//   2. when a hoisted check fails (block entry or segment charge), no
//      effect of the covered ops has been applied yet, so the interpreter
//      re-enters the reference switch loop at that pc and lets it produce
//      the exact halt label, gas and counters (the frame is provably about
//      to halt, so the replay is O(block)).

#ifndef ONOFFCHAIN_EVM_ANALYSIS_CACHE_H_
#define ONOFFCHAIN_EVM_ANALYSIS_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crypto/keccak.h"
#include "support/bytes.h"
#include "support/u256.h"

namespace onoff::evm {

// Handler identifiers for the threaded dispatcher. Real opcodes first,
// then the pseudo-ops the decoder synthesizes (block bookkeeping and fused
// superinstructions). The X-macro keeps this list, the computed-goto label
// table and the portable switch in lockstep.
#define ONOFF_EVM_HANDLER_LIST(X)                                             \
  X(STOP) X(ADD) X(MUL) X(SUB) X(DIV) X(SDIV) X(MOD) X(SMOD) X(ADDMOD)        \
  X(MULMOD) X(EXP) X(SIGNEXTEND)                                              \
  X(LT) X(GT) X(SLT) X(SGT) X(EQ) X(ISZERO) X(AND) X(OR) X(XOR) X(NOT)        \
  X(BYTE) X(SHL) X(SHR) X(SAR)                                                \
  X(SHA3)                                                                     \
  X(ADDRESS) X(BALANCE) X(ORIGIN) X(CALLER) X(CALLVALUE) X(CALLDATALOAD)      \
  X(CALLDATASIZE) X(CALLDATACOPY) X(CODESIZE) X(CODECOPY) X(GASPRICE)         \
  X(EXTCODESIZE) X(EXTCODECOPY) X(RETURNDATASIZE) X(RETURNDATACOPY)           \
  X(BLOCKHASH) X(COINBASE) X(TIMESTAMP) X(NUMBER) X(DIFFICULTY) X(GASLIMIT)   \
  X(POP) X(MLOAD) X(MSTORE) X(MSTORE8) X(SLOAD) X(SSTORE) X(JUMP) X(JUMPI)    \
  X(PC) X(MSIZE) X(GAS)                                                       \
  X(PUSH) X(DUP) X(SWAP) X(LOG)                                               \
  X(CREATE) X(CALL) X(CALLCODE) X(RETURN) X(DELEGATECALL) X(CREATE2)          \
  X(STATICCALL) X(REVERT) X(INVALID) X(SELFDESTRUCT)                          \
  X(BEGIN_BLOCK) X(CHARGE) X(IMPLICIT_STOP)                                   \
  X(PUSH_JUMP) X(PUSH_JUMP_BAD) X(PUSH_JUMPI) X(PUSH_JUMPI_BAD)               \
  X(DUP_MLOAD) X(PUSH_BINOP)

enum class Handler : uint8_t {
#define ONOFF_EVM_H_ENUM(name) name,
  ONOFF_EVM_HANDLER_LIST(ONOFF_EVM_H_ENUM)
#undef ONOFF_EVM_H_ENUM
      kCount,
};

// One decoded instruction. `imm` is overloaded per handler: constant-pool
// index (PUSH, PUSH_BINOP), target cell index (PUSH_JUMP*, PUSH_JUMPI*),
// block index (BEGIN_BLOCK), or a hoisted static-gas amount (CHARGE).
// `ops_end` is the count of original opcodes of the enclosing block whose
// execution has begun once this cell runs — the prefix of the block's
// opcode list to credit to the metrics counters if the cell halts the
// frame. `arg` carries the DUP/SWAP/LOG n or the folded binop Handler.
struct CodeCell {
  uint32_t imm = 0;
  uint32_t pc = 0;
  uint32_t ops_end = 0;
  uint8_t op = 0;  // a Handler value
  uint8_t arg = 0;
};

// One basic block. `base_gas` is the static gas of the ops before the
// first checkpoint (charged at block entry); later segments hang off
// CHARGE cells. `stack_req`/`stack_max` are the entry stack height the
// block needs and its worst-case net growth, both clamped to kMaxStack+1
// (an always-failing sentinel) when a pathological block exceeds them.
struct CodeBlock {
  uint64_t base_gas = 0;
  uint32_t start_pc = 0;
  uint32_t ops_begin = 0;
  uint32_t ops_count = 0;
  uint32_t agg_begin = 0;
  uint32_t agg_end = 0;
  uint16_t stack_req = 0;
  uint16_t stack_max = 0;
};

struct CodeAnalysis {
  // pc -> is a valid JUMPDEST (not inside PUSH immediate data).
  std::vector<bool> jumpdests;
  std::vector<CodeCell> cells;
  std::vector<CodeBlock> blocks;
  // Original opcode bytes per block (counter flushing on halt paths).
  std::vector<uint8_t> ops;
  // Aggregated (opcode, count) pairs per block (the fast flush).
  std::vector<std::pair<uint8_t, uint32_t>> agg;
  // PUSH immediates (zero-padded when truncated at end of code).
  std::vector<U256> pool;
  // pc -> BEGIN_BLOCK cell index for valid JUMPDESTs, -1 otherwise.
  std::vector<int32_t> jump_cell;
  // Set when the code defeats the u32 fields (multi-GB static segments);
  // such code must run on the reference switch interpreter.
  bool switch_only = false;
};

// Marks the positions of valid JUMPDESTs (not inside PUSH immediates).
// Shared with the reference interpreter and the static analyzer's CFG.
std::vector<bool> AnalyzeJumpdests(BytesView code);

// Full decode. `fuse` enables superinstruction fusion; without it the
// stream is a 1:1 cell-per-instruction translation (the bench's
// "threaded" vs "threaded+super" rows).
CodeAnalysis Analyze(const Bytes& code, bool fuse);

// The binop evaluation shared by the PUSH_BINOP handler, decode-time
// constant folding and (by construction) the switch interpreter: `a` is
// the first-popped (top) operand, exactly as the switch cases bind it.
U256 EvalBinop(Handler h, const U256& a, const U256& b);

// True for the static-cost binary ops PUSH+binop fusion may absorb.
bool IsFusableBinop(uint8_t opcode_byte);

// Handler id of a fusable binary opcode byte (IsFusableBinop must hold);
// lets the reference loop share EvalBinop with the threaded handlers.
Handler BinopHandler(uint8_t opcode_byte);

class CodeAnalysisCache {
 public:
  static CodeAnalysisCache& Global();

  // Returns the memoized analysis for (code_hash, fuse), building it from
  // `code` on a miss. Thread-safe; the build runs outside the lock so
  // concurrent misses on distinct codes do not serialize.
  std::shared_ptr<const CodeAnalysis> Get(const Hash32& code_hash,
                                          const Bytes& code, bool fuse);
  // View-based variant for callers that don't own a Bytes (the static
  // analyzer's DecodedCode); only copies the code on a miss.
  std::shared_ptr<const CodeAnalysis> Get(const Hash32& code_hash,
                                          BytesView code, bool fuse);

  size_t size() const;
  void Clear();

 private:
  // Content-addressed entries never go stale, so the cap is purely a
  // memory bound: once full, new codes are analyzed but not retained.
  static constexpr size_t kMaxEntries = 4096;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const CodeAnalysis>> map_;
};

}  // namespace onoff::evm

#endif  // ONOFFCHAIN_EVM_ANALYSIS_CACHE_H_
