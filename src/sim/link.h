// Composable link models for one directed link. A LinkConfig composes four
// orthogonal effects per message:
//
//   latency_ms      fixed one-way propagation delay
//   jitter_ms       + uniform extra delay in [0, jitter_ms]
//   loss            probabilistic drop (per message, i.i.d.)
//   bytes_per_ms    bandwidth: + payload_bytes / bytes_per_ms serialisation
//                   delay (0 = infinite bandwidth, no size-dependent term)
//
// The default-constructed config is the identity link — zero delay, no loss
// — which is what makes the synchronous pre-sim behaviour the zero-latency
// special case of the simulated one.

#ifndef ONOFFCHAIN_SIM_LINK_H_
#define ONOFFCHAIN_SIM_LINK_H_

#include <cstdint>
#include <optional>

#include "sim/rng.h"

namespace onoff::sim {

struct LinkConfig {
  uint64_t latency_ms = 0;
  uint64_t jitter_ms = 0;
  double loss = 0.0;
  uint64_t bytes_per_ms = 0;
};

// Samples per-message fate on one directed link, consuming the link's own
// RNG stream (so two links never perturb each other's draws).
class Link {
 public:
  Link() : rng_(0) {}
  Link(LinkConfig config, Rng rng) : config_(config), rng_(rng) {}

  // nullopt = the message was lost; otherwise the one-way delay in virtual
  // milliseconds for a message of `bytes` payload.
  std::optional<uint64_t> SampleDelay(size_t bytes) {
    // Always consume the jitter draw so loss does not shift later samples
    // relative to a loss-free run with the same seed.
    uint64_t jitter =
        config_.jitter_ms > 0 ? rng_.NextBelow(config_.jitter_ms + 1) : 0;
    if (rng_.Chance(config_.loss)) return std::nullopt;
    uint64_t delay = config_.latency_ms + jitter;
    if (config_.bytes_per_ms > 0) delay += bytes / config_.bytes_per_ms;
    return delay;
  }

  const LinkConfig& config() const { return config_; }

 private:
  LinkConfig config_;
  Rng rng_;
};

}  // namespace onoff::sim

#endif  // ONOFFCHAIN_SIM_LINK_H_
