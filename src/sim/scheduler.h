// The discrete-event core of the network simulator: a monotonic virtual
// clock in milliseconds and a priority event queue. Events scheduled for the
// same instant run in insertion order (a strict (due, sequence) ordering),
// so a run is a pure function of the seed and the schedule — no wall time,
// no thread interleaving, no iteration-order dependence.
//
// Virtual milliseconds are the simulator's native unit; chain timestamps
// (unix seconds) map onto them via an offset chosen by the harness (the
// protocol driver maps T1..T3 as (t - run_start) * 1000).

#ifndef ONOFFCHAIN_SIM_SCHEDULER_H_
#define ONOFFCHAIN_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace onoff::sim {

class Scheduler {
 public:
  using EventFn = std::function<void()>;

  // The virtual clock. Starts at 0, only moves forward.
  uint64_t NowMs() const { return now_ms_; }

  // Schedules `fn` at absolute virtual time `at_ms` (clamped to NowMs() —
  // the past is immutable; such events run "immediately next").
  void ScheduleAt(uint64_t at_ms, EventFn fn);
  void ScheduleAfter(uint64_t delay_ms, EventFn fn) {
    ScheduleAt(now_ms_ + delay_ms, std::move(fn));
  }

  // Runs the single next event (advancing the clock to its due time).
  // Returns false when the queue is empty.
  bool Step();

  // Runs every event due at or before `until_ms`, in (due, insertion)
  // order. The clock lands on each event's due time as it runs; when no
  // eligible events remain the clock advances to `until_ms` (waiting out
  // the remainder of the window). If `stop` is non-null it is checked
  // before the first event and after every event; once it returns true the
  // run returns immediately WITHOUT advancing the clock further — this is
  // how a caller waits "until my delivery lands or the deadline passes".
  // Returns NowMs() at exit.
  uint64_t RunUntil(uint64_t until_ms,
                    const std::function<bool()>& stop = nullptr);

  // Drains the queue (new events scheduled by running events included), up
  // to `max_events` as a runaway guard. Returns how many events ran.
  size_t RunAll(size_t max_events = 1u << 20);

  size_t PendingEvents() const { return queue_.size(); }
  uint64_t EventsExecuted() const { return executed_; }

 private:
  struct Event {
    uint64_t due_ms;
    uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.due_ms != b.due_ms) return a.due_ms > b.due_ms;
      return a.seq > b.seq;
    }
  };

  // Pops and runs the top event, advancing the clock.
  void RunTop();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  uint64_t now_ms_ = 0;
  uint64_t seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace onoff::sim

#endif  // ONOFFCHAIN_SIM_SCHEDULER_H_
