#include "sim/transport.h"

#include "obs/metrics.h"
#include "trace/trace.h"

namespace onoff::sim {

namespace {

// 0 .. ~65s in powers of 4 — virtual one-way delays.
const std::vector<double>& DelayBucketsMs() {
  static const std::vector<double> buckets =
      obs::ExponentialBuckets(1.0, 4.0, 9);
  return buckets;
}

}  // namespace

Transport* DefaultInstantTransport() {
  static InstantTransport transport;
  return &transport;
}

SimTransport::SimTransport(Scheduler* scheduler, uint64_t seed)
    : scheduler_(scheduler), seed_(seed) {}

void SimTransport::SetDefaultLink(const LinkConfig& config) {
  default_link_ = config;
}

void SimTransport::SetLink(const std::string& from, const std::string& to,
                           const LinkConfig& config) {
  uint64_t stream = HashName(from) * 3 + HashName(to);
  links_.insert_or_assign({from, to},
                          Link(config, Rng::ForStream(seed_, stream)));
}

Link& SimTransport::LinkFor(const std::string& from, const std::string& to) {
  auto it = links_.find({from, to});
  if (it != links_.end()) return it->second;
  uint64_t stream = HashName(from) * 3 + HashName(to);
  it = links_
           .emplace(std::make_pair(from, to),
                    Link(default_link_, Rng::ForStream(seed_, stream)))
           .first;
  return it->second;
}

void SimTransport::Partition(const std::vector<std::string>& island) {
  partition_active_ = true;
  partition_started_ms_ = scheduler_->NowMs();
  island_ = std::set<std::string>(island.begin(), island.end());
  static obs::Counter* partitions = obs::GetCounterOrNull("sim.partitions");
  if (partitions != nullptr) partitions->Inc();
}

void SimTransport::Heal() {
  if (!partition_active_) return;
  partition_active_ = false;
  static obs::Counter* partition_ms =
      obs::GetCounterOrNull("sim.partition_ms");
  if (partition_ms != nullptr) {
    partition_ms->Inc(scheduler_->NowMs() - partition_started_ms_);
  }
  island_.clear();
}

void SimTransport::SchedulePartition(uint64_t at_ms,
                                     std::vector<std::string> island,
                                     uint64_t heal_ms) {
  scheduler_->ScheduleAt(at_ms, [this, island = std::move(island)] {
    Partition(island);
  });
  if (heal_ms > at_ms) scheduler_->ScheduleAt(heal_ms, [this] { Heal(); });
}

void SimTransport::Crash(const std::string& endpoint) {
  crashed_.insert(endpoint);
  static obs::Counter* crashes = obs::GetCounterOrNull("sim.crashes");
  if (crashes != nullptr) crashes->Inc();
}

void SimTransport::Restart(const std::string& endpoint) {
  crashed_.erase(endpoint);
  static obs::Counter* restarts = obs::GetCounterOrNull("sim.restarts");
  if (restarts != nullptr) restarts->Inc();
}

void SimTransport::ScheduleCrash(uint64_t at_ms, std::string endpoint,
                                 uint64_t restart_ms) {
  scheduler_->ScheduleAt(at_ms, [this, endpoint] { Crash(endpoint); });
  if (restart_ms > at_ms) {
    scheduler_->ScheduleAt(restart_ms,
                           [this, endpoint = std::move(endpoint)] {
                             Restart(endpoint);
                           });
  }
}

bool SimTransport::SameSide(const std::string& from,
                            const std::string& to) const {
  if (!partition_active_) return true;
  return (island_.count(from) > 0) == (island_.count(to) > 0);
}

void SimTransport::CountDrop(const std::string& from, const std::string& to,
                             uint64_t* stat, const char* reason) {
  ++*stat;
  if (obs::Registry* g = obs::Registry::Global()) {
    g->GetCounter(std::string("sim.msgs_dropped_") + reason)->Inc();
    g->GetCounter("sim.link." + from + "->" + to + ".dropped")->Inc();
  }
}

bool SimTransport::Deliver(const std::string& from, const std::string& to,
                           size_t bytes, std::function<void()> deliver) {
  ++stats_.sent;
  static obs::Counter* sent = obs::GetCounterOrNull("sim.msgs_sent");
  if (sent != nullptr) sent->Inc();

  // Sender's ambient trace context, captured before the scheduler defers
  // delivery (the closure runs with an empty thread-local context stack).
  trace::Tracer* tracer = trace::Tracer::Global();
  trace::TraceContext ctx =
      tracer != nullptr ? trace::CurrentContext() : trace::TraceContext{};
  auto drop_event = [&](const char* reason) {
    if (tracer != nullptr) {
      tracer->Event(ctx, "net.drop", "net",
                    {{"link", from + "->" + to}, {"reason", reason}});
    }
  };

  if (crashed_.count(from) > 0 || crashed_.count(to) > 0) {
    CountDrop(from, to, &stats_.dropped_crash, "crash");
    drop_event("crash");
    return false;
  }
  if (!SameSide(from, to)) {
    CountDrop(from, to, &stats_.dropped_partition, "partition");
    drop_event("partition");
    return false;
  }
  auto delay = LinkFor(from, to).SampleDelay(bytes);
  if (!delay.has_value()) {
    CountDrop(from, to, &stats_.dropped_loss, "loss");
    drop_event("loss");
    return false;
  }
  if (obs::Registry* g = obs::Registry::Global()) {
    g->GetHistogram("sim.delay_ms", DelayBucketsMs())
        ->Observe(static_cast<double>(*delay));
  }
  // One hop in flight on the virtual clock: the span's duration is the
  // sampled link delay.
  trace::TraceContext flight;
  if (tracer != nullptr) {
    flight = tracer->BeginSpan(ctx, "net.flight", "net",
                               {{"link", from + "->" + to},
                                {"delay_ms", std::to_string(*delay)}});
  }
  scheduler_->ScheduleAfter(
      *delay, [this, from, to, delay = *delay, tracer, flight,
               deliver = std::move(deliver)] {
        if (crashed_.count(to) > 0) {
          CountDrop(from, to, &stats_.dropped_crash, "crash");
          if (tracer != nullptr) {
            tracer->EndSpan(flight, {{"dropped", "crash_on_arrival"}});
          }
          return;
        }
        ++stats_.delivered;
        stats_.delay_ms_sum += delay;
        if (obs::Registry* g = obs::Registry::Global()) {
          g->GetCounter("sim.msgs_delivered")->Inc();
          g->GetCounter("sim.link." + from + "->" + to + ".delivered")->Inc();
        }
        deliver();
        if (tracer != nullptr) tracer->EndSpan(flight);
      });
  return true;
}

}  // namespace onoff::sim
