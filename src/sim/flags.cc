#include "sim/flags.h"

#include <cstdlib>
#include <cstring>

namespace onoff::sim {

namespace {

// Extracts the last "--<name> <v>" / "--<name>=<v>" occurrence, removing
// every occurrence from argv. Returns whether a value was found.
bool StringFlagFromArgs(int* argc, char** argv, const std::string& name,
                        std::string* value) {
  std::string flag = "--" + name;
  std::string flag_eq = flag + "=";
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, flag_eq.c_str(), flag_eq.size()) == 0) {
      *value = arg + flag_eq.size();
      found = true;
    } else if (flag == arg && i + 1 < *argc) {
      *value = argv[++i];
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  return found;
}

}  // namespace

uint64_t U64FlagFromArgs(int* argc, char** argv, const std::string& name,
                         uint64_t default_value) {
  std::string value;
  if (!StringFlagFromArgs(argc, argv, name, &value)) return default_value;
  char* end = nullptr;
  uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  return (end != nullptr && *end == '\0' && !value.empty()) ? parsed
                                                            : default_value;
}

double DoubleFlagFromArgs(int* argc, char** argv, const std::string& name,
                          double default_value) {
  std::string value;
  if (!StringFlagFromArgs(argc, argv, name, &value)) return default_value;
  char* end = nullptr;
  double parsed = std::strtod(value.c_str(), &end);
  return (end != nullptr && *end == '\0' && !value.empty()) ? parsed
                                                            : default_value;
}

SimFlags SimFlagsFromArgs(int* argc, char** argv, SimFlags defaults) {
  SimFlags flags = defaults;
  flags.seed = U64FlagFromArgs(argc, argv, "sim-seed", defaults.seed);
  flags.latency_ms =
      U64FlagFromArgs(argc, argv, "sim-latency-ms", defaults.latency_ms);
  flags.jitter_ms =
      U64FlagFromArgs(argc, argv, "sim-jitter-ms", defaults.jitter_ms);
  flags.loss = DoubleFlagFromArgs(argc, argv, "sim-loss", defaults.loss);
  flags.trials = U64FlagFromArgs(argc, argv, "trials", defaults.trials);
  return flags;
}

}  // namespace onoff::sim
