// The shared delivery interface that both block gossip (chain::Network) and
// off-chain messages (core::MessageBus) route through.
//
//   Transport         the interface: deliver `bytes` from one named endpoint
//                     to another by eventually invoking a closure
//   InstantTransport  synchronous, lossless, zero latency — the behaviour
//                     the repo had before src/sim/ existed; Network and
//                     MessageBus fall back to it, so all pre-sim call sites
//                     behave identically
//   SimTransport      routes every message through a Scheduler with per-link
//                     latency/jitter/loss/bandwidth models, partitions with
//                     scheduled heals, and node crash/restart
//
// Endpoints are plain strings: node names for gossip ("producer",
// "replica0"), participant address hex for the message bus, and the
// reserved name "chain" for the protocol driver's transaction submissions.
//
// Fault semantics: loss, partitions and crashed endpoints are evaluated at
// SEND time (Deliver returns false — the sender may retry); a message
// already in flight when its receiver crashes is dropped at DELIVERY time
// (counted in dropped_crash, the sender is not informed — exactly the
// asymmetry that makes the challenge-period experiment interesting). A
// message in flight when a partition starts still arrives: partitions cut
// links, not packets already past them.

#ifndef ONOFFCHAIN_SIM_TRANSPORT_H_
#define ONOFFCHAIN_SIM_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/link.h"
#include "sim/scheduler.h"

namespace onoff::sim {

class Transport {
 public:
  virtual ~Transport() = default;

  // Routes one message of `bytes` payload from `from` to `to`; `deliver`
  // runs when (and if) the message arrives. Returns true when the message
  // was delivered or scheduled for delivery, false when it was dropped at
  // send time (loss, partition, crashed endpoint).
  virtual bool Deliver(const std::string& from, const std::string& to,
                       size_t bytes, std::function<void()> deliver) = 0;
};

// Zero-latency, lossless, synchronous delivery.
class InstantTransport final : public Transport {
 public:
  bool Deliver(const std::string& /*from*/, const std::string& /*to*/,
               size_t /*bytes*/, std::function<void()> deliver) override {
    deliver();
    return true;
  }
};

// The process-wide shared instant transport (stateless, so sharing is safe).
Transport* DefaultInstantTransport();

class SimTransport final : public Transport {
 public:
  // All randomness (loss, jitter) derives from `seed`; per-link streams are
  // keyed by the endpoint names, so adding a link never reshuffles another
  // link's draws.
  SimTransport(Scheduler* scheduler, uint64_t seed);

  // The link model used for any (from, to) pair without an explicit link.
  void SetDefaultLink(const LinkConfig& config);
  // Overrides one directed link.
  void SetLink(const std::string& from, const std::string& to,
               const LinkConfig& config);

  // ---- Fault injection ----
  // Splits the world into `island` vs everyone else: messages may only
  // cross between endpoints on the same side. Replaces any prior partition.
  void Partition(const std::vector<std::string>& island);
  void Heal();
  // Schedules Partition(island) at `at_ms` and Heal() at `heal_ms` on the
  // virtual clock (heal_ms <= at_ms means no automatic heal).
  void SchedulePartition(uint64_t at_ms, std::vector<std::string> island,
                         uint64_t heal_ms);
  bool partitioned() const { return partition_active_; }

  // A crashed endpoint neither sends nor receives; messages in flight to it
  // are dropped on arrival. Restart makes it reachable again — catching up
  // on missed state is the caller's job (chain::Network::CatchUp).
  void Crash(const std::string& endpoint);
  void Restart(const std::string& endpoint);
  void ScheduleCrash(uint64_t at_ms, std::string endpoint, uint64_t restart_ms);
  bool crashed(const std::string& endpoint) const {
    return crashed_.count(endpoint) > 0;
  }

  // ---- Accounting (virtual-time quantities: deterministic per seed) ----
  struct Stats {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped_loss = 0;
    uint64_t dropped_partition = 0;
    uint64_t dropped_crash = 0;
    uint64_t delay_ms_sum = 0;  // over delivered messages

    uint64_t dropped_total() const {
      return dropped_loss + dropped_partition + dropped_crash;
    }
  };
  const Stats& stats() const { return stats_; }

  bool Deliver(const std::string& from, const std::string& to, size_t bytes,
               std::function<void()> deliver) override;

 private:
  Link& LinkFor(const std::string& from, const std::string& to);
  bool SameSide(const std::string& from, const std::string& to) const;
  void CountDrop(const std::string& from, const std::string& to,
                 uint64_t* stat, const char* reason);

  Scheduler* scheduler_;
  uint64_t seed_;
  LinkConfig default_link_;
  std::map<std::pair<std::string, std::string>, Link> links_;
  bool partition_active_ = false;
  uint64_t partition_started_ms_ = 0;
  std::set<std::string> island_;
  std::set<std::string> crashed_;
  Stats stats_;
};

}  // namespace onoff::sim

#endif  // ONOFFCHAIN_SIM_TRANSPORT_H_
