#include "sim/scheduler.h"

#include <utility>

#include "obs/metrics.h"

namespace onoff::sim {

void Scheduler::ScheduleAt(uint64_t at_ms, EventFn fn) {
  if (at_ms < now_ms_) at_ms = now_ms_;
  queue_.push(Event{at_ms, seq_++, std::move(fn)});
}

void Scheduler::RunTop() {
  // priority_queue::top() is const; the handler is moved out via const_cast
  // (safe: the element is popped before the handler runs).
  Event ev;
  ev.due_ms = queue_.top().due_ms;
  ev.seq = queue_.top().seq;
  ev.fn = std::move(const_cast<Event&>(queue_.top()).fn);
  queue_.pop();
  if (ev.due_ms > now_ms_) now_ms_ = ev.due_ms;
  ++executed_;
  static obs::Counter* events = obs::GetCounterOrNull("sim.events_executed");
  if (events != nullptr) events->Inc();
  ev.fn();
}

bool Scheduler::Step() {
  if (queue_.empty()) return false;
  RunTop();
  return true;
}

uint64_t Scheduler::RunUntil(uint64_t until_ms,
                             const std::function<bool()>& stop) {
  if (stop && stop()) return now_ms_;
  while (!queue_.empty() && queue_.top().due_ms <= until_ms) {
    RunTop();
    if (stop && stop()) return now_ms_;
  }
  if (until_ms > now_ms_) now_ms_ = until_ms;
  return now_ms_;
}

size_t Scheduler::RunAll(size_t max_events) {
  size_t ran = 0;
  while (ran < max_events && Step()) ++ran;
  return ran;
}

}  // namespace onoff::sim
