// Shared parsing for the simulator's command-line flags (--sim-seed,
// --sim-latency-ms, --sim-loss, ...), in the same strip-from-argv style as
// obs::JsonPathFromArgs so benches and the CLI can layer sim flags on top
// of their own argument handling.

#ifndef ONOFFCHAIN_SIM_FLAGS_H_
#define ONOFFCHAIN_SIM_FLAGS_H_

#include <cstdint>
#include <string>

namespace onoff::sim {

// Parses and removes "--<name> <value>" / "--<name>=<value>" from argv,
// compacting argc. Returns the last occurrence's value, or `default_value`
// when absent or unparsable.
uint64_t U64FlagFromArgs(int* argc, char** argv, const std::string& name,
                         uint64_t default_value);
double DoubleFlagFromArgs(int* argc, char** argv, const std::string& name,
                          double default_value);

// The conventional simulator flag set. Parsed by SimFlagsFromArgs, which
// strips --sim-seed, --sim-latency-ms, --sim-jitter-ms, --sim-loss and
// --trials from argv.
struct SimFlags {
  uint64_t seed = 42;
  uint64_t latency_ms = 50;
  uint64_t jitter_ms = 0;
  double loss = 0.0;
  uint64_t trials = 12;
};

SimFlags SimFlagsFromArgs(int* argc, char** argv, SimFlags defaults = {});

}  // namespace onoff::sim

#endif  // ONOFFCHAIN_SIM_FLAGS_H_
