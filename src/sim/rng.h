// Deterministic, seedable PRNG for the simulator (xoshiro256** seeded via
// splitmix64). The determinism contract of src/sim/ requires that identical
// seeds replay byte-identical runs on every platform, so simulator code must
// never touch std::mt19937 (unspecified distributions), random_device or
// wall-clock entropy. Streams for independent components (one per directed
// link, one per trial) are derived by hashing, not by sharing, so the
// outcome of one link never depends on how often another link was used.

#ifndef ONOFFCHAIN_SIM_RNG_H_
#define ONOFFCHAIN_SIM_RNG_H_

#include <cstdint>
#include <string_view>

namespace onoff::sim {

// One step of splitmix64 — the seed expander recommended by the xoshiro
// authors, also usable as a cheap integer mix.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a over a string — used to derive per-link stream ids from endpoint
// names deterministically and order-independently.
inline uint64_t HashName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// xoshiro256**: fast, 2^256-1 period, passes BigCrush.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(&sm);
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n); 0 when n == 0. Lemire-style multiply-shift — biased
  // by at most 2^-64, which is irrelevant for fault sampling.
  uint64_t NextBelow(uint64_t n) {
    if (n == 0) return 0;
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * n) >> 64);
  }

  // Uniform in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // True with probability p (p <= 0 never, p >= 1 always).
  bool Chance(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    return NextDouble() < p;
  }

  // Derives an independent deterministic stream: same (seed, stream) always
  // yields the same generator, regardless of how much this one was used.
  static Rng ForStream(uint64_t seed, uint64_t stream) {
    uint64_t sm = seed;
    (void)SplitMix64(&sm);  // decouple from Rng(seed) itself
    return Rng(SplitMix64(&sm) ^ stream);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace onoff::sim

#endif  // ONOFFCHAIN_SIM_RNG_H_
