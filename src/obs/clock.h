// The one observability time source. Every obs timestamp — ScopedTimer
// spans, flight-recorder events, time-series samples, violation reports —
// reads Clock::NowUs(), which is the monotonic wall clock until something
// installs a replacement. The simulator installs its virtual clock here (see
// BettingProtocol::BindSimulation), so a simulated run never mixes wall and
// virtual time inside one export.
//
// Cost model: NowUs is one acquire load plus either a steady_clock read or
// one indirect call. Installed functions are retained for the process
// lifetime (readers may still hold the previous pointer), so installation is
// for long-lived sources, not per-call injection.

#ifndef ONOFFCHAIN_OBS_CLOCK_H_
#define ONOFFCHAIN_OBS_CLOCK_H_

#include <cstdint>
#include <functional>

namespace onoff::obs {

class Clock {
 public:
  using NowFn = std::function<uint64_t()>;

  // Microseconds from the installed source (wall-monotonic by default).
  static uint64_t NowUs();

  // Replaces the process-wide source; an empty function restores the wall
  // clock. The previous source stays allocated (a concurrent reader may be
  // mid-call), so installs should be rare — once per simulation binding.
  static void Install(NowFn now_us);

  // True when a non-wall source (the sim's virtual clock) is installed.
  static bool IsVirtual();
};

}  // namespace onoff::obs

#endif  // ONOFFCHAIN_OBS_CLOCK_H_
