// The bench/tool JSON emission path. Every bench_* executable and the CLI
// report through WriteBenchJson / the registry's WriteJsonFile so the
// BENCH_*.json files all share one schema and one writer.

#ifndef ONOFFCHAIN_OBS_EXPORT_H_
#define ONOFFCHAIN_OBS_EXPORT_H_

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "support/status.h"

namespace onoff::obs {

// Writes
//   { "schema": "onoffchain-bench-v1",
//     "bench": <name>,
//     "results": <results>,
//     "metrics": <global registry dump, or null when metrics are disabled> }
// to `path`. `results` carries the bench-specific measured quantities (the
// numbers the paper's tables/figures report); "metrics" carries the
// chain-wide instruments that accumulated while the bench ran.
Status WriteBenchJson(const std::string& path, const std::string& bench_name,
                      Json results);

// Parses and removes a "--json <path>" / "--json=<path>" flag (the alias
// "--metrics-json" is also accepted) from argv, compacting argc. Returns the
// flag value, `default_path` when the flag is absent, or "" when the flag is
// present with the value "-" (meaning: do not write a file).
std::string JsonPathFromArgs(int* argc, char** argv,
                             std::string default_path);

}  // namespace onoff::obs

#endif  // ONOFFCHAIN_OBS_EXPORT_H_
