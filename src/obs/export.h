// The bench/tool JSON emission path. Every bench_* executable and the CLI
// report through WriteBenchJson / the registry's WriteJsonFile so the
// BENCH_*.json files all share one schema and one writer.

#ifndef ONOFFCHAIN_OBS_EXPORT_H_
#define ONOFFCHAIN_OBS_EXPORT_H_

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "support/status.h"

namespace onoff::obs {

// Writes
//   { "schema": "onoffchain-bench-v1",
//     "bench": <name>,
//     "results": <results>,
//     "metrics": <global registry dump, or null when metrics are disabled> }
// to `path`. `results` carries the bench-specific measured quantities (the
// numbers the paper's tables/figures report); "metrics" carries the
// chain-wide instruments that accumulated while the bench ran.
Status WriteBenchJson(const std::string& path, const std::string& bench_name,
                      Json results);

// Parses and removes the JSON output-path flag from argv, compacting argc.
// One flag, two spellings: "--json <path>" / "--json=<path>" and the alias
// "--metrics-json <path>" / "--metrics-json=<path>" — every bench and CLI
// subcommand documents them identically. Returns the flag value,
// `default_path` when the flag is absent, or "" when the value is "-"
// (meaning: do not write a file). Giving the flag more than once (in either
// spelling) is an InvalidArgument error, not silent last-wins.
Result<std::string> JsonPathFromArgs(int* argc, char** argv,
                                     std::string default_path);

// JsonPathFromArgs for tool main()s: prints the error plus the unified help
// line to stderr and exits with status 2 on invalid usage.
std::string JsonPathFromArgsOrExit(int* argc, char** argv,
                                   std::string default_path);

// The unified help line for tools that document the flag.
inline constexpr char kJsonFlagHelp[] =
    "--json <path>|-   JSON output path (alias: --metrics-json; '-' skips "
    "the file)";

}  // namespace onoff::obs

#endif  // ONOFFCHAIN_OBS_EXPORT_H_
