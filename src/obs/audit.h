// The invariant-violation sink. Concrete invariants live next to the state
// they watch (chain/chain_audit.h); what lives here is the part every layer
// shares: the structured ViolationReport and the Auditor that collects
// reports, counts them into the metrics registry, triggers a flight-recorder
// triage dump, and — in fail-fast mode — aborts the process so CI turns a
// silent correctness bug into a red run with a bundle attached.

#ifndef ONOFFCHAIN_OBS_AUDIT_H_
#define ONOFFCHAIN_OBS_AUDIT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace onoff::obs {

// One detected invariant violation, carrying enough to triage without
// re-running: which invariant, where (block / tx / trace), and the offending
// values as name→value string pairs.
struct ViolationReport {
  std::string invariant;  // "conservation", "nonce", "settlement", ...
  std::string message;
  uint64_t trace_id = 0;
  uint64_t block_height = 0;
  std::string tx_hash;  // "0x…" or "" when not transaction-scoped
  std::vector<std::pair<std::string, std::string>> values;
  uint64_t ts_us = 0;  // stamped by Auditor::Report from obs::Clock

  Json ToJson() const;
  std::string ToString() const;
};

struct AuditorConfig {
  // Abort the process after reporting (the CI posture: a violated invariant
  // is a consensus bug, not a log line). Tests run with this off.
  bool fail_fast = false;
  // Dump a flight-recorder triage bundle per violation (no-op when no
  // recorder is installed). `dump_dir` overrides $ONOFF_FLIGHTREC_DIR.
  bool dump_flight = true;
  std::string dump_dir;
  // Reports retained for inspection; older ones are dropped (still counted).
  size_t keep = 64;
};

class Auditor {
 public:
  explicit Auditor(AuditorConfig config = {});

  // Stamps, records, counts (audit.violations + audit.violations.<name>),
  // logs, dumps the triage bundle, and aborts under fail_fast.
  void Report(ViolationReport report);

  uint64_t violations() const;
  std::vector<ViolationReport> Reports() const;
  void Clear();
  const AuditorConfig& config() const { return config_; }

 private:
  AuditorConfig config_;
  mutable std::mutex mu_;
  std::vector<ViolationReport> reports_;
  uint64_t total_ = 0;
};

}  // namespace onoff::obs

#endif  // ONOFFCHAIN_OBS_AUDIT_H_
