// Low-overhead metrics and tracing: monotonic counters, gauges, fixed-bucket
// histograms, RAII scoped-span timers, and a thread-safe Registry with a
// JSON exporter (the single code path every bench and tool reports through).
//
// Cost model: instruments are looked up by name once (cache the pointer at
// the call site) and updated with one relaxed atomic op; histograms take a
// short mutex. When metrics are disabled — compile with -DONOFF_METRICS=0 or
// run with the environment variable ONOFF_METRICS=0 — Registry::Global()
// returns nullptr and every cached-pointer call site reduces to one
// never-taken branch.

#ifndef ONOFFCHAIN_OBS_METRICS_H_
#define ONOFFCHAIN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.h"
#include "obs/json.h"
#include "support/status.h"

#ifndef ONOFF_METRICS
#define ONOFF_METRICS 1
#endif

namespace onoff::obs {

// A monotonically increasing counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// An instantaneous signed value (pool depth, queue length, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A histogram over fixed, sorted upper-bound bucket boundaries; an implicit
// +Inf bucket catches the overflow. Also tracks count/sum/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  double Min() const;  // 0 when empty
  double Max() const;  // 0 when empty
  const std::vector<double>& Bounds() const { return bounds_; }
  // bounds_.size() + 1 entries; the last is the +Inf bucket.
  std::vector<uint64_t> BucketCounts() const;

  // All fields read under one lock — the only way to get a consistent view
  // (separate Count()/BucketCounts() calls can tear against a concurrent
  // Observe). The JSON exporter and the time-series sampler use this.
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<uint64_t> buckets;
  };
  Snapshot TakeSnapshot() const;

  // Linear interpolation within the bucket holding quantile `q` (0..1);
  // bounded by the bucket edges, 0 when empty. Bucket-resolution accuracy —
  // good enough for health summaries, not for billing.
  static double QuantileFromBuckets(const std::vector<double>& bounds,
                                    const std::vector<uint64_t>& buckets,
                                    double q);
  void Reset();

 private:
  const std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Bucket boundary helpers.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);
// 1us .. ~16s in powers of 4 — wall-time spans.
const std::vector<double>& DefaultTimeBucketsUs();
// 1k .. ~8M gas in powers of 2 — per-transaction / per-call gas.
const std::vector<double>& DefaultGasBuckets();

// A thread-safe named-instrument registry. Instruments are created on first
// use and live as long as the registry, so returned pointers are stable and
// safe to cache. Most code uses the process-global instance via Global();
// components that need deterministic, always-on accounting (e.g. the
// protocol driver's per-stage ledger) own a private instance.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-global registry, or nullptr when metrics are disabled
  // (compiled out or ONOFF_METRICS=0 in the environment).
  static Registry* Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // The bucket bounds are fixed on first creation; later calls with the
  // same name return the existing histogram regardless of `bounds`.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  // Point reads; 0 when the instrument does not exist.
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;

  // Zeroes every instrument (bucket layouts are kept).
  void Reset();

  // JSON export:
  //   { "schema": "onoffchain-metrics-v1",
  //     "counters":  { name: value, ... },
  //     "gauges":    { name: value, ... },
  //     "histograms":{ name: { count, sum, min, max,
  //                            buckets: [ {le, count}, ... ] }, ... } }
  Json ToJson() const;
  std::string ToJsonString() const { return ToJson().Dump(); }
  Status WriteJsonFile(const std::string& path) const;

  // A point-in-time copy of every instrument, names sorted (map order).
  // Counters/gauges are single relaxed loads; each histogram is copied under
  // its own lock, so no individual instrument is torn. The time-series
  // sampler stores these.
  struct InstrumentSnapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    struct HistogramEntry {
      std::string name;
      std::vector<double> bounds;
      Histogram::Snapshot data;
    };
    std::vector<HistogramEntry> histograms;
  };
  InstrumentSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Call-site helpers: resolve against the global registry, nullptr when
// disabled. Cache the result in a function-local static:
//   static obs::Counter* c = obs::GetCounterOrNull("chain.blocks_mined");
//   if (c) c->Inc();
inline Counter* GetCounterOrNull(const std::string& name) {
  Registry* r = Registry::Global();
  return r != nullptr ? r->GetCounter(name) : nullptr;
}
inline Gauge* GetGaugeOrNull(const std::string& name) {
  Registry* r = Registry::Global();
  return r != nullptr ? r->GetGauge(name) : nullptr;
}
inline Histogram* GetHistogramOrNull(const std::string& name,
                                     std::vector<double> bounds) {
  Registry* r = Registry::Global();
  return r != nullptr ? r->GetHistogram(name, std::move(bounds)) : nullptr;
}

// RAII span: observes its lifetime in microseconds into a histogram (which
// may be nullptr — the span then only carries ElapsedUs for the caller).
// Reads obs::Clock, so timers follow the sim's virtual clock during
// simulations instead of mixing wall durations into virtual-time exports.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_us_(Clock::NowUs()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Observe(ElapsedUs());
  }

  double ElapsedUs() const {
    return static_cast<double>(Clock::NowUs() - start_us_);
  }

 private:
  Histogram* hist_;
  uint64_t start_us_;
};

}  // namespace onoff::obs

#endif  // ONOFFCHAIN_OBS_METRICS_H_
