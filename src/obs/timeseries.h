// The time-series sampler: periodic snapshots of a metrics Registry into
// ring-buffered series. Sampling reads obs::Clock, so series are stamped in
// wall time normally and in virtual time under the simulator. Export derives
// what raw instruments cannot answer directly — counter deltas per interval
// and quantiles from histogram buckets — as `onoffchain-timeseries-v1`, and
// the `onoffchain_cli health` subcommand renders the latest sample as a
// one-screen summary.
//
// No background thread: owners drive Tick() from their own cadence (the
// chain ticks at block commit), which keeps simulated runs deterministic.

#ifndef ONOFFCHAIN_OBS_TIMESERIES_H_
#define ONOFFCHAIN_OBS_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace onoff::obs {

struct TimeseriesConfig {
  // Minimum obs::Clock ms between samples taken via Tick().
  uint64_t interval_ms = 250;
  // Samples retained; the oldest fall off.
  size_t capacity = 512;
};

class TimeseriesSampler {
 public:
  // `registry` may be nullptr (metrics disabled): every call is a no-op.
  TimeseriesSampler(Registry* registry, TimeseriesConfig config = {});

  // Samples when interval_ms has elapsed since the last sample (first call
  // always samples). Returns true when a sample was taken.
  bool Tick();
  void SampleNow();

  size_t samples() const;

  // { "schema": "onoffchain-timeseries-v1", "interval_ms": ..., "samples": n,
  //   "counters":   { name: [ {ts_us, value, delta}, ... ] },
  //   "gauges":     { name: [ {ts_us, value}, ... ] },
  //   "histograms": { name: [ {ts_us, count, sum, p50, p90, p99}, ... ] } }
  Json ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

  // Point reads over the latest sample for the health summary. nullopt when
  // no sample or no such instrument.
  std::optional<uint64_t> LatestCounter(const std::string& name) const;
  std::optional<int64_t> LatestGauge(const std::string& name) const;
  std::optional<double> LatestQuantile(const std::string& name,
                                       double q) const;
  // Rate of a counter over the whole retained window, per obs::Clock
  // second; nullopt when fewer than two samples or no elapsed time.
  std::optional<double> CounterRatePerSec(const std::string& name) const;

  void Clear();
  const TimeseriesConfig& config() const { return config_; }

 private:
  struct Sample {
    uint64_t ts_us = 0;
    Registry::InstrumentSnapshot snapshot;
  };

  Registry* registry_;
  TimeseriesConfig config_;
  mutable std::mutex mu_;
  std::deque<Sample> samples_;
  uint64_t last_sample_ms_ = 0;
  bool sampled_once_ = false;
};

}  // namespace onoff::obs

#endif  // ONOFFCHAIN_OBS_TIMESERIES_H_
