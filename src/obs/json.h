// A minimal JSON value builder for the metrics exporter and the bench
// harnesses. Write-only: it builds and serialises JSON documents, it does
// not parse them. Numbers that are integral print without a decimal point
// so gas counts stay exact in the emitted files.

#ifndef ONOFFCHAIN_OBS_JSON_H_
#define ONOFFCHAIN_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace onoff::obs {

class Json {
 public:
  // Leaf constructors.
  Json() : kind_(Kind::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool v);
  static Json Int(int64_t v);
  static Json Uint(uint64_t v);
  static Json Num(double v);
  static Json Str(std::string v);
  static Json Object();
  static Json Array();

  // Object member insertion (keys keep insertion order). Returns *this for
  // chaining. Must only be called on an Object.
  Json& Set(const std::string& key, Json value);
  // Array append. Must only be called on an Array.
  Json& Push(Json value);

  bool IsObject() const { return kind_ == Kind::kObject; }
  bool IsArray() const { return kind_ == Kind::kArray; }

  // Serialises with two-space indentation when `pretty`, compact otherwise.
  std::string Dump(bool pretty = true) const;

 private:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kObject,
                    kArray };

  void DumpTo(std::string* out, bool pretty, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;  // object
  std::vector<Json> elements_;                         // array
};

}  // namespace onoff::obs

#endif  // ONOFFCHAIN_OBS_JSON_H_
