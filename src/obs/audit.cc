#include "obs/audit.h"

#include <atomic>
#include <cstdlib>

#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "support/log.h"

namespace onoff::obs {

Json ViolationReport::ToJson() const {
  Json values_json = Json::Object();
  for (const auto& [name, value] : values) {
    values_json.Set(name, Json::Str(value));
  }
  Json root = Json::Object();
  root.Set("invariant", Json::Str(invariant))
      .Set("message", Json::Str(message))
      .Set("trace_id", Json::Uint(trace_id))
      .Set("block_height", Json::Uint(block_height))
      .Set("tx_hash", Json::Str(tx_hash))
      .Set("ts_us", Json::Uint(ts_us))
      .Set("values", std::move(values_json));
  return root;
}

std::string ViolationReport::ToString() const {
  std::string out = "invariant '" + invariant + "' violated at block " +
                    std::to_string(block_height) + ": " + message;
  if (!tx_hash.empty()) out += " (tx " + tx_hash + ")";
  if (trace_id != 0) out += " [trace " + std::to_string(trace_id) + "]";
  for (const auto& [name, value] : values) {
    out += " " + name + "=" + value;
  }
  return out;
}

Auditor::Auditor(AuditorConfig config) : config_(std::move(config)) {}

void Auditor::Report(ViolationReport report) {
  report.ts_us = Clock::NowUs();
  ONOFF_LOG(log::Level::kError, "audit", "%s", report.ToString().c_str());
  if (Registry* registry = Registry::Global()) {
    registry->GetCounter("audit.violations")->Inc();
    registry->GetCounter("audit.violations." + report.invariant)->Inc();
  }
  FlightRecord(FlightKind::kViolation, report.trace_id, report.block_height,
               0, report.invariant);
  Json report_json = report.ToJson();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    if (reports_.size() < config_.keep) {
      reports_.push_back(std::move(report));
    }
  }
  if (config_.dump_flight) {
    if (FlightRecorder* recorder = FlightRecorder::Global()) {
      if (!config_.dump_dir.empty()) {
        // A scoped override beats mutating the environment (tests share the
        // process): build the path the same way DumpOnIncident does.
        static std::atomic<uint64_t> incident{0};
        std::string path =
            config_.dump_dir + "/onoffchain-flightrec-audit-" +
            std::to_string(incident.fetch_add(1)) + ".json";
        Status st = recorder->DumpTriageBundle(path, "invariant-violation",
                                               &report_json);
        if (!st.ok()) {
          ONOFF_LOG(log::Level::kWarn, "audit", "%s",
                    st.ToString().c_str());
        }
      } else {
        recorder->DumpOnIncident("invariant-violation", &report_json);
      }
    }
  }
  if (config_.fail_fast) {
    ONOFF_LOG(log::Level::kError, "audit",
              "fail-fast: aborting on invariant violation");
    std::abort();
  }
}

uint64_t Auditor::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<ViolationReport> Auditor::Reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

void Auditor::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  reports_.clear();
  total_ = 0;
}

}  // namespace onoff::obs
