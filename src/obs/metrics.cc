#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace onoff::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[idx];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

uint64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::Min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.buckets = buckets_;
  return snap;
}

double Histogram::QuantileFromBuckets(const std::vector<double>& bounds,
                                      const std::vector<uint64_t>& buckets,
                                      double q) {
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // The rank-th observation (1-based) in cumulative bucket order.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    uint64_t before = cumulative;
    cumulative += buckets[i];
    if (cumulative < rank) continue;
    // Interpolate inside bucket i: [lower, upper] holds buckets[i]
    // observations assumed uniform.
    double lower = i == 0 ? 0 : bounds[i - 1];
    // The +Inf bucket has no upper edge; report its lower edge.
    if (i >= bounds.size()) return lower;
    double upper = bounds[i];
    double fraction = static_cast<double>(rank - before) /
                      static_cast<double>(buckets[i]);
    return lower + (upper - lower) * fraction;
  }
  return 0;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

const std::vector<double>& DefaultTimeBucketsUs() {
  static const std::vector<double> kBuckets =
      ExponentialBuckets(1.0, 4.0, 13);  // 1us .. ~16.8s
  return kBuckets;
}

const std::vector<double>& DefaultGasBuckets() {
  static const std::vector<double> kBuckets =
      ExponentialBuckets(1000.0, 2.0, 14);  // 1k .. 8.192M gas
  return kBuckets;
}

Registry* Registry::Global() {
#if !ONOFF_METRICS
  return nullptr;
#else
  static Registry* const instance = [] {
    const char* env = std::getenv("ONOFF_METRICS");
    if (env != nullptr && std::strcmp(env, "0") == 0) {
      return static_cast<Registry*>(nullptr);
    }
    return new Registry();
  }();
  return instance;
#endif
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

uint64_t Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

int64_t Registry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->Value();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

Registry::InstrumentSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  InstrumentSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    InstrumentSnapshot::HistogramEntry entry;
    entry.name = name;
    entry.bounds = h->Bounds();
    entry.data = h->TakeSnapshot();
    snap.histograms.push_back(std::move(entry));
  }
  return snap;
}

Json Registry::ToJson() const {
  InstrumentSnapshot snap = Snapshot();
  Json counters = Json::Object();
  for (const auto& [name, value] : snap.counters) {
    counters.Set(name, Json::Uint(value));
  }
  Json gauges = Json::Object();
  for (const auto& [name, value] : snap.gauges) {
    gauges.Set(name, Json::Int(value));
  }
  Json histograms = Json::Object();
  for (const auto& entry : snap.histograms) {
    Json buckets = Json::Array();
    for (size_t i = 0; i < entry.data.buckets.size(); ++i) {
      Json bucket = Json::Object();
      bucket.Set("le", i < entry.bounds.size()
                           ? Json::Num(entry.bounds[i])
                           : Json::Str("+Inf"));
      bucket.Set("count", Json::Uint(entry.data.buckets[i]));
      buckets.Push(std::move(bucket));
    }
    Json histogram = Json::Object();
    histogram.Set("count", Json::Uint(entry.data.count))
        .Set("sum", Json::Num(entry.data.sum))
        .Set("min", Json::Num(entry.data.min))
        .Set("max", Json::Num(entry.data.max))
        .Set("buckets", std::move(buckets));
    histograms.Set(entry.name, std::move(histogram));
  }
  Json root = Json::Object();
  root.Set("schema", Json::Str("onoffchain-metrics-v1"))
      .Set("counters", std::move(counters))
      .Set("gauges", std::move(gauges))
      .Set("histograms", std::move(histograms));
  return root;
}

Status Registry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open metrics output file: " + path);
  }
  out << ToJsonString();
  if (!out.good()) {
    return Status::Internal("failed writing metrics to " + path);
  }
  return Status::OK();
}

}  // namespace onoff::obs
