#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace onoff::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[idx];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

uint64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::Min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

const std::vector<double>& DefaultTimeBucketsUs() {
  static const std::vector<double> kBuckets =
      ExponentialBuckets(1.0, 4.0, 13);  // 1us .. ~16.8s
  return kBuckets;
}

const std::vector<double>& DefaultGasBuckets() {
  static const std::vector<double> kBuckets =
      ExponentialBuckets(1000.0, 2.0, 14);  // 1k .. 8.192M gas
  return kBuckets;
}

Registry* Registry::Global() {
#if !ONOFF_METRICS
  return nullptr;
#else
  static Registry* const instance = [] {
    const char* env = std::getenv("ONOFF_METRICS");
    if (env != nullptr && std::strcmp(env, "0") == 0) {
      return static_cast<Registry*>(nullptr);
    }
    return new Registry();
  }();
  return instance;
#endif
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

uint64_t Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

int64_t Registry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->Value();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

Json Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::Object();
  for (const auto& [name, c] : counters_) {
    counters.Set(name, Json::Uint(c->Value()));
  }
  Json gauges = Json::Object();
  for (const auto& [name, g] : gauges_) {
    gauges.Set(name, Json::Int(g->Value()));
  }
  Json histograms = Json::Object();
  for (const auto& [name, h] : histograms_) {
    Json buckets = Json::Array();
    const std::vector<double>& bounds = h->Bounds();
    std::vector<uint64_t> counts = h->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      Json bucket = Json::Object();
      bucket.Set("le", i < bounds.size()
                           ? Json::Num(bounds[i])
                           : Json::Str("+Inf"));
      bucket.Set("count", Json::Uint(counts[i]));
      buckets.Push(std::move(bucket));
    }
    Json entry = Json::Object();
    entry.Set("count", Json::Uint(h->Count()))
        .Set("sum", Json::Num(h->Sum()))
        .Set("min", Json::Num(h->Min()))
        .Set("max", Json::Num(h->Max()))
        .Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(entry));
  }
  Json root = Json::Object();
  root.Set("schema", Json::Str("onoffchain-metrics-v1"))
      .Set("counters", std::move(counters))
      .Set("gauges", std::move(gauges))
      .Set("histograms", std::move(histograms));
  return root;
}

Status Registry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open metrics output file: " + path);
  }
  out << ToJsonString();
  if (!out.good()) {
    return Status::Internal("failed writing metrics to " + path);
  }
  return Status::OK();
}

}  // namespace onoff::obs
