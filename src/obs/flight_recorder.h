// The flight recorder: a lock-striped bounded ring of recent structured
// events — span boundaries, log lines, pool admits/drops, bus deliveries,
// block commits, settlements, invariant violations — cheap enough to leave
// on always. It answers "what was the system doing just before this went
// wrong": on an invariant violation, an equivalence-assertion abort or a
// fatal signal, the recorder dumps an `onoffchain-flightrec-v1` triage
// bundle (recent events + a metrics snapshot + the violation report) so a
// red run is diagnosable from the bundle alone.
//
// Cost model: one Record is a thread-id hash, one short striped mutex, and a
// fixed-size struct copy (no allocation — the detail string is truncated
// into an inline buffer). With no recorder installed, instrumented call
// sites pay one relaxed load.

#ifndef ONOFFCHAIN_OBS_FLIGHT_RECORDER_H_
#define ONOFFCHAIN_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "support/status.h"

namespace onoff::obs {

enum class FlightKind : uint8_t {
  kLog = 0,        // a = log level; detail = "component: message"
  kSpanBegin,      // a = span id; detail = span name
  kSpanEnd,        // a = span id, b = duration us; detail = span name
  kTraceEvent,     // instant trace event; detail = event name
  kPoolAdmit,      // a = nonce, b = pool depth; detail = tx hash prefix
  kPoolDrop,       // a = nonce; detail = drop reason
  kBusDeliver,     // a = payload bytes; detail = topic
  kBusDrop,        // a = payload bytes; detail = topic + reason
  kBlockCommit,    // a = height, b = gas used; detail = state root prefix
  kSettlement,     // a = total gas; detail = settlement name
  kViolation,      // detail = invariant name
};

const char* FlightKindName(FlightKind kind);

// One fixed-size recorded event. `detail` is NUL-terminated and truncated;
// `seq` is a process-wide order (merging stripes reconstructs the global
// event order even when ts_us ties under the sim's ms-granular clock).
struct FlightEvent {
  uint64_t seq = 0;
  uint64_t ts_us = 0;
  uint64_t trace_id = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  FlightKind kind = FlightKind::kLog;
  char detail[47] = {0};
};

struct FlightRecorderConfig {
  // Total retained events, split evenly across the stripes.
  size_t capacity = 4096;
  size_t stripes = 8;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  // The process-global recorder used by instrumented call sites; nullptr
  // until InstallGlobal. Installing also mirrors ONOFF_LOG records into the
  // recorder (detached again when replaced by nullptr).
  static FlightRecorder* Global();
  // Installs `recorder` (not owned; nullptr detaches). Returns the previous
  // global so owners can restore it.
  static FlightRecorder* InstallGlobal(FlightRecorder* recorder);

  void Record(FlightKind kind, uint64_t trace_id, uint64_t a, uint64_t b,
              std::string_view detail);

  // All retained events merged across stripes in seq order.
  std::vector<FlightEvent> Snapshot() const;

  // { "schema": "onoffchain-flightrec-v1", "reason": ..., "ts_us": ...,
  //   "violation": <report json or null>, "dropped": <overwritten count>,
  //   "events": [ {seq, ts_us, kind, trace_id, a, b, detail}, ... ],
  //   "metrics": <global registry dump or null> }
  Json TriageBundle(const std::string& reason, const Json* violation) const;
  Status DumpTriageBundle(const std::string& path, const std::string& reason,
                          const Json* violation) const;
  // Dumps into $ONOFF_FLIGHTREC_DIR (default: cwd) as
  // "onoffchain-flightrec-<n>.json"; returns the path ("" on failure). This
  // is the incident hook — violations and equivalence aborts call it.
  std::string DumpOnIncident(const std::string& reason,
                             const Json* violation) const;

  // Best-effort: dump a bundle from SIGABRT/SIGSEGV/SIGBUS before dying.
  // Not async-signal-safe in the strict sense (it allocates); acceptable for
  // a process that is crashing anyway. Tools and benches opt in.
  static void InstallSignalDump();

  uint64_t events_recorded() const;
  // Events overwritten by ring wrap since the last Clear.
  uint64_t events_dropped() const;
  void Clear();
  const FlightRecorderConfig& config() const { return config_; }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<FlightEvent> ring;  // capacity-sized, wraps at next
    size_t next = 0;
    uint64_t recorded = 0;
  };

  Stripe& StripeForThisThread();

  FlightRecorderConfig config_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<uint64_t> seq_{0};
};

// The call-site helper: one relaxed load when no recorder is installed.
inline void FlightRecord(FlightKind kind, uint64_t trace_id, uint64_t a,
                         uint64_t b, std::string_view detail) {
  if (FlightRecorder* recorder = FlightRecorder::Global()) {
    recorder->Record(kind, trace_id, a, b, detail);
  }
}

}  // namespace onoff::obs

#endif  // ONOFFCHAIN_OBS_FLIGHT_RECORDER_H_
