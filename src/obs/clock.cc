#include "obs/clock.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

namespace onoff::obs {

namespace {

uint64_t WallNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<const Clock::NowFn*>& SourceStore() {
  static std::atomic<const Clock::NowFn*> source{nullptr};  // null = wall
  return source;
}

// Replaced sources are retired here, never freed: a reader that loaded the
// pointer just before an Install may still be calling through it, and the
// retained vector keeps the allocations reachable (LeakSanitizer-clean).
void Retire(std::unique_ptr<Clock::NowFn> fn) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<Clock::NowFn>>* retired =
      new std::vector<std::unique_ptr<Clock::NowFn>>();
  std::lock_guard<std::mutex> lock(mu);
  retired->push_back(std::move(fn));
}

}  // namespace

uint64_t Clock::NowUs() {
  const NowFn* fn = SourceStore().load(std::memory_order_acquire);
  return fn != nullptr ? (*fn)() : WallNowUs();
}

void Clock::Install(NowFn now_us) {
  if (!now_us) {
    SourceStore().store(nullptr, std::memory_order_release);
    return;
  }
  auto fn = std::make_unique<NowFn>(std::move(now_us));
  SourceStore().store(fn.get(), std::memory_order_release);
  Retire(std::move(fn));
}

bool Clock::IsVirtual() {
  return SourceStore().load(std::memory_order_acquire) != nullptr;
}

}  // namespace onoff::obs
