#include "obs/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace onoff::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN literals; the exporter uses a string sentinel.
    *out += v > 0 ? "\"+Inf\"" : (v < 0 ? "\"-Inf\"" : "\"NaN\"");
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

void Indent(std::string* out, int depth) { out->append(2 * depth, ' '); }

}  // namespace

Json Json::Bool(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Int(int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::Uint(uint64_t v) {
  Json j;
  j.kind_ = Kind::kUint;
  j.uint_ = v;
  return j;
}

Json Json::Num(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::Str(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::Set(const std::string& key, Json value) {
  assert(kind_ == Kind::kObject);
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  assert(kind_ == Kind::kArray);
  elements_.push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string* out, bool pretty, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      *out += buf;
      return;
    }
    case Kind::kUint: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(uint_));
      *out += buf;
      return;
    }
    case Kind::kDouble:
      AppendDouble(out, double_);
      return;
    case Kind::kString:
      AppendEscaped(out, string_);
      return;
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += pretty ? "{\n" : "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (pretty) Indent(out, depth + 1);
        AppendEscaped(out, members_[i].first);
        *out += pretty ? ": " : ":";
        members_[i].second.DumpTo(out, pretty, depth + 1);
        if (i + 1 < members_.size()) *out += ",";
        if (pretty) *out += "\n";
      }
      if (pretty) Indent(out, depth);
      *out += "}";
      return;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        return;
      }
      *out += pretty ? "[\n" : "[";
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (pretty) Indent(out, depth + 1);
        elements_[i].DumpTo(out, pretty, depth + 1);
        if (i + 1 < elements_.size()) *out += ",";
        if (pretty) *out += "\n";
      }
      if (pretty) Indent(out, depth);
      *out += "]";
      return;
    }
  }
}

std::string Json::Dump(bool pretty) const {
  std::string out;
  DumpTo(&out, pretty, 0);
  if (pretty) out += "\n";
  return out;
}

}  // namespace onoff::obs
