#include "obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

namespace onoff::obs {

Status WriteBenchJson(const std::string& path, const std::string& bench_name,
                      Json results) {
  Json root = Json::Object();
  root.Set("schema", Json::Str("onoffchain-bench-v1"))
      .Set("bench", Json::Str(bench_name))
      .Set("results", std::move(results));
  Registry* registry = Registry::Global();
  root.Set("metrics",
           registry != nullptr ? registry->ToJson() : Json::Null());
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open bench output file: " + path);
  }
  out << root.Dump();
  if (!out.good()) {
    return Status::Internal("failed writing bench output to " + path);
  }
  return Status::OK();
}

Result<std::string> JsonPathFromArgs(int* argc, char** argv,
                                     std::string default_path) {
  std::string path = std::move(default_path);
  int occurrences = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strncmp(arg, "--json=", 7) == 0) {
      value = arg + 7;
    } else if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      value = arg + 15;
    } else if ((std::strcmp(arg, "--json") == 0 ||
                std::strcmp(arg, "--metrics-json") == 0) &&
               i + 1 < *argc) {
      value = argv[++i];
    }
    if (value != nullptr) {
      ++occurrences;
      path = value;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  if (occurrences > 1) {
    return Status::InvalidArgument(
        "--json/--metrics-json given " + std::to_string(occurrences) +
        " times; pass the JSON output path exactly once");
  }
  if (path == "-") return std::string();
  return path;
}

std::string JsonPathFromArgsOrExit(int* argc, char** argv,
                                   std::string default_path) {
  Result<std::string> path =
      JsonPathFromArgs(argc, argv, std::move(default_path));
  if (!path.ok()) {
    std::fprintf(stderr, "%s\nusage: %s\n", path.status().message().c_str(),
                 kJsonFlagHelp);
    std::exit(2);
  }
  return *std::move(path);
}

}  // namespace onoff::obs
