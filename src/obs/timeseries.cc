#include "obs/timeseries.h"

#include <algorithm>
#include <fstream>

#include "obs/clock.h"

namespace onoff::obs {

namespace {

// The previous sample's value for `name`, for delta derivation; nullopt in
// the first sample or when the instrument appeared mid-window.
std::optional<uint64_t> CounterIn(
    const Registry::InstrumentSnapshot& snapshot, const std::string& name) {
  for (const auto& [n, v] : snapshot.counters) {
    if (n == name) return v;
  }
  return std::nullopt;
}

}  // namespace

TimeseriesSampler::TimeseriesSampler(Registry* registry,
                                     TimeseriesConfig config)
    : registry_(registry), config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.interval_ms == 0) config_.interval_ms = 1;
}

bool TimeseriesSampler::Tick() {
  if (registry_ == nullptr) return false;
  uint64_t now_ms = Clock::NowUs() / 1000;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A clock regression (a fresh virtual scheduler bound mid-stream) resets
    // the cadence instead of silencing the sampler.
    if (sampled_once_ && now_ms >= last_sample_ms_ &&
        now_ms < last_sample_ms_ + config_.interval_ms) {
      return false;
    }
  }
  SampleNow();
  return true;
}

void TimeseriesSampler::SampleNow() {
  if (registry_ == nullptr) return;
  Sample sample;
  sample.ts_us = Clock::NowUs();
  sample.snapshot = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  last_sample_ms_ = sample.ts_us / 1000;
  sampled_once_ = true;
  samples_.push_back(std::move(sample));
  while (samples_.size() > config_.capacity) samples_.pop_front();
}

size_t TimeseriesSampler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

Json TimeseriesSampler::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::Object();
  Json gauges = Json::Object();
  Json histograms = Json::Object();
  // Series keyed by the union of names across samples (instruments appear on
  // first use); keys come from the latest sample for a stable layout.
  if (!samples_.empty()) {
    const Registry::InstrumentSnapshot& latest = samples_.back().snapshot;
    for (const auto& [name, unused] : latest.counters) {
      (void)unused;
      Json points = Json::Array();
      std::optional<uint64_t> previous;
      for (const Sample& sample : samples_) {
        std::optional<uint64_t> value = CounterIn(sample.snapshot, name);
        if (!value.has_value()) continue;
        Json point = Json::Object();
        point.Set("ts_us", Json::Uint(sample.ts_us))
            .Set("value", Json::Uint(*value));
        if (previous.has_value() && *value >= *previous) {
          point.Set("delta", Json::Uint(*value - *previous));
        }
        previous = value;
        points.Push(std::move(point));
      }
      counters.Set(name, std::move(points));
    }
    for (const auto& [name, unused] : latest.gauges) {
      (void)unused;
      Json points = Json::Array();
      for (const Sample& sample : samples_) {
        for (const auto& [n, v] : sample.snapshot.gauges) {
          if (n != name) continue;
          Json point = Json::Object();
          point.Set("ts_us", Json::Uint(sample.ts_us))
              .Set("value", Json::Int(v));
          points.Push(std::move(point));
        }
      }
      gauges.Set(name, std::move(points));
    }
    for (const auto& latest_entry : latest.histograms) {
      Json points = Json::Array();
      for (const Sample& sample : samples_) {
        for (const auto& entry : sample.snapshot.histograms) {
          if (entry.name != latest_entry.name) continue;
          Json point = Json::Object();
          point.Set("ts_us", Json::Uint(sample.ts_us))
              .Set("count", Json::Uint(entry.data.count))
              .Set("sum", Json::Num(entry.data.sum))
              .Set("p50", Json::Num(Histogram::QuantileFromBuckets(
                              entry.bounds, entry.data.buckets, 0.50)))
              .Set("p90", Json::Num(Histogram::QuantileFromBuckets(
                              entry.bounds, entry.data.buckets, 0.90)))
              .Set("p99", Json::Num(Histogram::QuantileFromBuckets(
                              entry.bounds, entry.data.buckets, 0.99)));
          points.Push(std::move(point));
        }
      }
      histograms.Set(latest_entry.name, std::move(points));
    }
  }
  Json root = Json::Object();
  root.Set("schema", Json::Str("onoffchain-timeseries-v1"))
      .Set("interval_ms", Json::Uint(config_.interval_ms))
      .Set("samples", Json::Uint(samples_.size()))
      .Set("counters", std::move(counters))
      .Set("gauges", std::move(gauges))
      .Set("histograms", std::move(histograms));
  return root;
}

Status TimeseriesSampler::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open timeseries output file: " +
                                   path);
  }
  out << ToJson().Dump();
  if (!out.good()) {
    return Status::Internal("failed writing timeseries to " + path);
  }
  return Status::OK();
}

std::optional<uint64_t> TimeseriesSampler::LatestCounter(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return std::nullopt;
  return CounterIn(samples_.back().snapshot, name);
}

std::optional<int64_t> TimeseriesSampler::LatestGauge(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return std::nullopt;
  for (const auto& [n, v] : samples_.back().snapshot.gauges) {
    if (n == name) return v;
  }
  return std::nullopt;
}

std::optional<double> TimeseriesSampler::LatestQuantile(
    const std::string& name, double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return std::nullopt;
  for (const auto& entry : samples_.back().snapshot.histograms) {
    if (entry.name != name) continue;
    if (entry.data.count == 0) return std::nullopt;
    return Histogram::QuantileFromBuckets(entry.bounds, entry.data.buckets,
                                          q);
  }
  return std::nullopt;
}

std::optional<double> TimeseriesSampler::CounterRatePerSec(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() < 2) return std::nullopt;
  std::optional<uint64_t> first = CounterIn(samples_.front().snapshot, name);
  std::optional<uint64_t> last = CounterIn(samples_.back().snapshot, name);
  if (!first.has_value() || !last.has_value() || *last < *first) {
    return std::nullopt;
  }
  uint64_t elapsed_us = samples_.back().ts_us - samples_.front().ts_us;
  if (elapsed_us == 0) return std::nullopt;
  return static_cast<double>(*last - *first) * 1e6 /
         static_cast<double>(elapsed_us);
}

void TimeseriesSampler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  last_sample_ms_ = 0;
  sampled_once_ = false;
}

}  // namespace onoff::obs
