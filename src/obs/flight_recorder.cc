#include "obs/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "support/log.h"

namespace onoff::obs {

namespace {

std::atomic<FlightRecorder*>& GlobalStore() {
  static std::atomic<FlightRecorder*> recorder{nullptr};
  return recorder;
}

// The ONOFF_LOG mirror: every record that passes the level filter is also a
// flight event, so the bundle shows the log tail without a second sink.
void LogMirror(log::Level level, const char* component, const char* message) {
  FlightRecorder* recorder = GlobalStore().load(std::memory_order_acquire);
  if (recorder == nullptr) return;
  char detail[96];
  std::snprintf(detail, sizeof(detail), "%s: %s", component, message);
  recorder->Record(FlightKind::kLog, 0, static_cast<uint64_t>(level), 0,
                   detail);
}

void SignalDumpHandler(int sig) {
  // Restore default first: anything failing below must not recurse.
  std::signal(sig, SIG_DFL);
  if (FlightRecorder* recorder = GlobalStore().load(std::memory_order_acquire)) {
    recorder->DumpOnIncident(std::string("fatal-signal-") +
                                 std::to_string(sig),
                             nullptr);
  }
  std::raise(sig);
}

}  // namespace

const char* FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kLog:
      return "log";
    case FlightKind::kSpanBegin:
      return "span-begin";
    case FlightKind::kSpanEnd:
      return "span-end";
    case FlightKind::kTraceEvent:
      return "trace-event";
    case FlightKind::kPoolAdmit:
      return "pool-admit";
    case FlightKind::kPoolDrop:
      return "pool-drop";
    case FlightKind::kBusDeliver:
      return "bus-deliver";
    case FlightKind::kBusDrop:
      return "bus-drop";
    case FlightKind::kBlockCommit:
      return "block-commit";
    case FlightKind::kSettlement:
      return "settlement";
    case FlightKind::kViolation:
      return "violation";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
  if (config_.stripes == 0) config_.stripes = 1;
  if (config_.capacity < config_.stripes) config_.capacity = config_.stripes;
  size_t per_stripe = config_.capacity / config_.stripes;
  stripes_.reserve(config_.stripes);
  for (size_t i = 0; i < config_.stripes; ++i) {
    auto stripe = std::make_unique<Stripe>();
    stripe->ring.resize(per_stripe);
    stripes_.push_back(std::move(stripe));
  }
}

FlightRecorder* FlightRecorder::Global() {
  return GlobalStore().load(std::memory_order_acquire);
}

FlightRecorder* FlightRecorder::InstallGlobal(FlightRecorder* recorder) {
  FlightRecorder* previous =
      GlobalStore().exchange(recorder, std::memory_order_acq_rel);
  log::SetRecordHook(recorder != nullptr ? &LogMirror : nullptr);
  return previous;
}

FlightRecorder::Stripe& FlightRecorder::StripeForThisThread() {
  size_t index = std::hash<std::thread::id>()(std::this_thread::get_id()) %
                 stripes_.size();
  return *stripes_[index];
}

void FlightRecorder::Record(FlightKind kind, uint64_t trace_id, uint64_t a,
                            uint64_t b, std::string_view detail) {
  FlightEvent event;
  event.ts_us = Clock::NowUs();
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  event.trace_id = trace_id;
  event.a = a;
  event.b = b;
  event.kind = kind;
  size_t n = std::min(detail.size(), sizeof(event.detail) - 1);
  std::memcpy(event.detail, detail.data(), n);
  event.detail[n] = '\0';

  Stripe& stripe = StripeForThisThread();
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.ring[stripe.next] = event;
  stripe.next = (stripe.next + 1) % stripe.ring.size();
  ++stripe.recorded;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    size_t live = std::min<uint64_t>(stripe->recorded, stripe->ring.size());
    // Oldest-first within the stripe: the ring wraps at `next`.
    size_t start = stripe->recorded > stripe->ring.size() ? stripe->next : 0;
    for (size_t i = 0; i < live; ++i) {
      events.push_back(stripe->ring[(start + i) % stripe->ring.size()]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return events;
}

Json FlightRecorder::TriageBundle(const std::string& reason,
                                  const Json* violation) const {
  Json events = Json::Array();
  for (const FlightEvent& event : Snapshot()) {
    Json e = Json::Object();
    e.Set("seq", Json::Uint(event.seq))
        .Set("ts_us", Json::Uint(event.ts_us))
        .Set("kind", Json::Str(FlightKindName(event.kind)))
        .Set("trace_id", Json::Uint(event.trace_id))
        .Set("a", Json::Uint(event.a))
        .Set("b", Json::Uint(event.b))
        .Set("detail", Json::Str(event.detail));
    events.Push(std::move(e));
  }
  Json root = Json::Object();
  root.Set("schema", Json::Str("onoffchain-flightrec-v1"))
      .Set("reason", Json::Str(reason))
      .Set("ts_us", Json::Uint(Clock::NowUs()))
      .Set("violation", violation != nullptr ? *violation : Json::Null())
      .Set("dropped", Json::Uint(events_dropped()))
      .Set("events", std::move(events));
  Registry* registry = Registry::Global();
  root.Set("metrics",
           registry != nullptr ? registry->ToJson() : Json::Null());
  return root;
}

Status FlightRecorder::DumpTriageBundle(const std::string& path,
                                        const std::string& reason,
                                        const Json* violation) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open flight-recorder dump: " +
                                   path);
  }
  out << TriageBundle(reason, violation).Dump();
  if (!out.good()) {
    return Status::Internal("failed writing flight-recorder dump to " + path);
  }
  return Status::OK();
}

std::string FlightRecorder::DumpOnIncident(const std::string& reason,
                                           const Json* violation) const {
  static std::atomic<uint64_t> incident{0};
  const char* dir = std::getenv("ONOFF_FLIGHTREC_DIR");
  std::string path = dir != nullptr && dir[0] != '\0'
                         ? std::string(dir) + "/"
                         : std::string();
  char name[96];
  // The pid keeps parallel ctest/bench processes sharing one directory from
  // clobbering each other's bundles.
  std::snprintf(name, sizeof(name), "onoffchain-flightrec-%d-%llu.json",
                static_cast<int>(getpid()),
                static_cast<unsigned long long>(
                    incident.fetch_add(1, std::memory_order_relaxed)));
  path += name;
  Status st = DumpTriageBundle(path, reason, violation);
  if (!st.ok()) {
    std::fprintf(stderr, "flight recorder: %s\n", st.ToString().c_str());
    return "";
  }
  ONOFF_LOG(log::Level::kWarn, "obs", "flight-recorder bundle dumped to %s (%s)",
            path.c_str(), reason.c_str());
  return path;
}

void FlightRecorder::InstallSignalDump() {
  std::signal(SIGABRT, &SignalDumpHandler);
  std::signal(SIGSEGV, &SignalDumpHandler);
  std::signal(SIGBUS, &SignalDumpHandler);
}

uint64_t FlightRecorder::events_recorded() const {
  uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->recorded;
  }
  return total;
}

uint64_t FlightRecorder::events_dropped() const {
  uint64_t dropped = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (stripe->recorded > stripe->ring.size()) {
      dropped += stripe->recorded - stripe->ring.size();
    }
  }
  return dropped;
}

void FlightRecorder::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    std::fill(stripe->ring.begin(), stripe->ring.end(), FlightEvent{});
    stripe->next = 0;
    stripe->recorded = 0;
  }
}

}  // namespace onoff::obs
