#include "chain/tx_pool.h"

namespace onoff::chain {

Status TxPool::Add(const Transaction& tx) {
  std::string key = HashKey(tx.Hash());
  if (seen_.count(key) > 0) {
    return Status::AlreadyExists("transaction already in pool");
  }
  seen_.insert(std::move(key));
  pending_.push_back(tx);
  return Status::OK();
}

std::vector<Transaction> TxPool::Take(size_t max_count) {
  std::vector<Transaction> out;
  while (!pending_.empty() && out.size() < max_count) {
    out.push_back(std::move(pending_.front()));
    pending_.pop_front();
    // Dedup applies to *pending* entries only; a taken (mined or deferred)
    // transaction may legitimately be re-added.
    seen_.erase(HashKey(out.back().Hash()));
  }
  return out;
}

}  // namespace onoff::chain
