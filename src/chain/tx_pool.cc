#include "chain/tx_pool.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "support/bytes.h"
#include "trace/trace.h"

namespace onoff::chain {

TxPool::TxPool(TxPoolConfig config) : config_(config) {
  if (config_.shard_count == 0) config_.shard_count = 1;
  shards_.reserve(config_.shard_count);
  for (size_t i = 0; i < config_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t TxPool::ShardIndexFor(const Entry& entry) const {
  if (entry.has_sender) {
    return std::hash<Address>{}(entry.sender) % shards_.size();
  }
  // No recoverable sender: stripe by transaction hash (still deterministic,
  // so a duplicate lands on the stripe that has seen it).
  Hash32 h = entry.tx.Hash();
  uint64_t prefix = 0;
  for (size_t i = 0; i < sizeof(prefix); ++i) {
    prefix = (prefix << 8) | h[i];
  }
  return prefix % shards_.size();
}

void TxPool::UpdateDepthGauge() const {
  static obs::Gauge* depth = obs::GetGaugeOrNull("txpool.depth");
  if (depth != nullptr) depth->Set(static_cast<int64_t>(size()));
}

Status TxPool::Add(const Transaction& tx) {
  Entry entry;
  entry.tx = tx;
  auto sender = tx.Sender();
  if (sender.ok()) {
    entry.has_sender = true;
    entry.sender = *sender;
  }
  std::string key = HashKey(tx.Hash());
  Shard& shard = *shards_[ShardIndexFor(entry)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.pending_hashes.count(key) > 0) {
      static obs::Counter* dups = obs::GetCounterOrNull("txpool.duplicates");
      if (dups != nullptr) dups->Inc();
      return Status::AlreadyExists("transaction already in pool");
    }
    if (shard.recent_taken.count(key) > 0) {
      static obs::Counter* retaken =
          obs::GetCounterOrNull("txpool.retaken_rejected");
      if (retaken != nullptr) retaken->Inc();
      return Status::AlreadyExists(
          "transaction was recently taken (in flight or mined)");
    }
    shard.pending_hashes.insert(std::move(key));
    entry.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    shard.entries.push_back(std::move(entry));
  }
  pending_count_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* added = obs::GetCounterOrNull("txpool.added");
  if (added != nullptr) added->Inc();
  UpdateDepthGauge();
  if (trace::Tracer* tracer = trace::Tracer::Global()) {
    tracer->Event(tracer->ContextForTx(tx.Hash()), "pool.admit", "chain",
                  {{"depth", std::to_string(size())}});
  }
  if (obs::FlightRecorder::Global() != nullptr) {
    Hash32 h = tx.Hash();
    uint64_t trace_id = 0;
    if (trace::Tracer* tracer = trace::Tracer::Global()) {
      trace_id = tracer->ContextForTx(h).trace_id;
    }
    obs::FlightRecord(obs::FlightKind::kPoolAdmit, trace_id, tx.nonce, size(),
                      ToHex0x(BytesView(h.data(), 8)));
  }
  return Status::OK();
}

std::vector<Transaction> TxPool::Take(size_t max_count, uint64_t gas_budget) {
  // Drain every stripe into a staging area; stripes are only locked for the
  // move, so gossip Adds keep flowing while we pack (their entries carry
  // later sequence numbers and simply miss this batch).
  std::vector<Entry> staged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    std::move(shard->entries.begin(), shard->entries.end(),
              std::back_inserter(staged));
    shard->entries.clear();
  }
  std::sort(staged.begin(), staged.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });

  // Slot-preserving per-sender nonce sort: collect each sender's entry
  // indices (their slots, in submission order) and reassign that sender's
  // transactions to those slots in ascending nonce order. Applying the
  // transform to an already-ordered sequence is the identity, which is what
  // makes block replay (validator/network) reproduce the producer's order.
  std::vector<size_t> order(staged.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::map<Address, std::vector<size_t>> by_sender;
  for (size_t i = 0; i < staged.size(); ++i) {
    if (staged[i].has_sender) by_sender[staged[i].sender].push_back(i);
  }
  std::map<Address, uint64_t> min_nonce;
  for (auto& [sender, slots] : by_sender) {
    uint64_t lowest = UINT64_MAX;
    for (size_t i : slots) lowest = std::min(lowest, staged[i].tx.nonce);
    min_nonce[sender] = lowest;
    if (slots.size() < 2) continue;
    std::vector<size_t> sorted = slots;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&staged](size_t a, size_t b) {
                       return staged[a].tx.nonce < staged[b].tx.nonce;
                     });
    for (size_t j = 0; j < slots.size(); ++j) order[slots[j]] = sorted[j];
  }

  // Greedy packing under the count and gas budgets. An entry that does not
  // fit the remaining budget blocks only the rest of its own sender's nonce
  // sequence (skipping ahead within one sender would reorder nonces);
  // packing continues with other senders. A sender's entries are only
  // taken while contiguous from the base nonce: gapped entries stay
  // pending, already-consumed nonces are dropped as unminable.
  enum class Fate : char { kDefer, kTake, kDrop };
  std::vector<Fate> fate(staged.size(), Fate::kDefer);
  struct SenderState {
    uint64_t expected = 0;
    bool blocked = false;
  };
  std::map<Address, SenderState> senders;
  uint64_t budget = gas_budget;
  size_t taken_count = 0;
  size_t dropped_count = 0;
  std::vector<Transaction> out;
  for (size_t pos = 0; pos < order.size() && taken_count < max_count; ++pos) {
    Entry& entry = staged[order[pos]];
    if (!entry.has_sender) {
      // No nonce sequence to protect: pack whenever it fits.
      if (entry.tx.gas_limit <= budget) {
        fate[order[pos]] = Fate::kTake;
        budget -= entry.tx.gas_limit;
        out.push_back(entry.tx);
        ++taken_count;
      }
      continue;
    }
    auto [it, first_seen] = senders.try_emplace(entry.sender);
    SenderState& ss = it->second;
    if (first_seen) {
      ss.expected = base_nonce_ ? base_nonce_(entry.sender)
                                : min_nonce[entry.sender];
    }
    if (ss.blocked) continue;
    if (entry.tx.nonce < ss.expected) {
      fate[order[pos]] = Fate::kDrop;
      ++dropped_count;
      static obs::Counter* stale =
          obs::GetCounterOrNull("txpool.stale_dropped");
      if (stale != nullptr) stale->Inc();
      obs::FlightRecord(obs::FlightKind::kPoolDrop,
                        trace::CurrentContext().trace_id, entry.tx.nonce, 0,
                        "stale-nonce");
      continue;
    }
    if (entry.tx.nonce > ss.expected) {
      // Nonce gap: hold this and the rest of the sender's sequence until
      // the missing transaction arrives.
      ss.blocked = true;
      static obs::Counter* gaps = obs::GetCounterOrNull("txpool.gap_held");
      if (gaps != nullptr) gaps->Inc();
      continue;
    }
    if (entry.tx.gas_limit > budget) {
      ss.blocked = true;
      static obs::Counter* skips =
          obs::GetCounterOrNull("txpool.budget_skipped");
      if (skips != nullptr) skips->Inc();
      continue;
    }
    fate[order[pos]] = Fate::kTake;
    budget -= entry.tx.gas_limit;
    out.push_back(entry.tx);
    ++ss.expected;
    ++taken_count;
  }

  // Redistribute: deferred entries go back to the front of their stripes
  // (still ahead of anything added while we packed — sequence numbers keep
  // them ordered); taken hashes enter the bounded recently-taken window;
  // dropped hashes are simply forgotten.
  std::vector<std::vector<Entry>> deferred(shards_.size());
  std::vector<std::vector<std::string>> taken_keys(shards_.size());
  for (size_t i = 0; i < staged.size(); ++i) {
    size_t shard_index = ShardIndexFor(staged[i]);
    switch (fate[i]) {
      case Fate::kDefer:
        deferred[shard_index].push_back(std::move(staged[i]));
        break;
      case Fate::kTake:
      case Fate::kDrop: {
        std::string key = HashKey(staged[i].tx.Hash());
        if (fate[i] == Fate::kTake) {
          taken_keys[shard_index].push_back(std::move(key));
        } else {
          std::lock_guard<std::mutex> lock(shards_[shard_index]->mu);
          shards_[shard_index]->pending_hashes.erase(key);
        }
        break;
      }
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (deferred[s].empty() && taken_keys[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!deferred[s].empty()) {
      shard.entries.insert(shard.entries.begin(),
                           std::make_move_iterator(deferred[s].begin()),
                           std::make_move_iterator(deferred[s].end()));
    }
    if (!taken_keys[s].empty()) {
      for (const std::string& key : taken_keys[s]) {
        shard.pending_hashes.erase(key);
        shard.recent_taken.insert(key);
      }
      shard.recent_batches.push_back(std::move(taken_keys[s]));
      while (shard.recent_batches.size() > config_.recent_take_batches) {
        for (const std::string& key : shard.recent_batches.front()) {
          shard.recent_taken.erase(key);
        }
        shard.recent_batches.pop_front();
      }
    }
  }
  pending_count_.fetch_sub(taken_count + dropped_count,
                           std::memory_order_relaxed);
  UpdateDepthGauge();
  return out;
}

bool TxPool::Contains(const Hash32& tx_hash) const {
  std::string key = HashKey(tx_hash);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->pending_hashes.count(key) > 0) return true;
  }
  return false;
}

bool TxPool::RecentlyTaken(const Hash32& tx_hash) const {
  std::string key = HashKey(tx_hash);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->recent_taken.count(key) > 0) return true;
  }
  return false;
}

}  // namespace onoff::chain
