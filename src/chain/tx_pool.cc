#include "chain/tx_pool.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "trace/trace.h"

namespace onoff::chain {

void TxPool::UpdateDepthGauge() const {
  static obs::Gauge* depth = obs::GetGaugeOrNull("txpool.depth");
  if (depth != nullptr) depth->Set(static_cast<int64_t>(pending_.size()));
}

Status TxPool::Add(const Transaction& tx) {
  std::string key = HashKey(tx.Hash());
  if (seen_.count(key) > 0) {
    static obs::Counter* dups = obs::GetCounterOrNull("txpool.duplicates");
    if (dups != nullptr) dups->Inc();
    return Status::AlreadyExists("transaction already in pool");
  }
  seen_.insert(std::move(key));
  Entry entry;
  entry.tx = tx;
  auto sender = tx.Sender();
  if (sender.ok()) {
    entry.has_sender = true;
    entry.sender = *sender;
  }
  pending_.push_back(std::move(entry));
  static obs::Counter* added = obs::GetCounterOrNull("txpool.added");
  if (added != nullptr) added->Inc();
  UpdateDepthGauge();
  if (trace::Tracer* tracer = trace::Tracer::Global()) {
    tracer->Event(tracer->ContextForTx(tx.Hash()), "pool.admit", "chain",
                  {{"depth", std::to_string(pending_.size())}});
  }
  return Status::OK();
}

std::vector<Transaction> TxPool::Take(size_t max_count, uint64_t gas_budget) {
  // Slot-preserving per-sender nonce sort: collect each sender's entry
  // indices (their slots, in submission order) and reassign that sender's
  // transactions to those slots in ascending nonce order. Applying the
  // transform to an already-ordered sequence is the identity, which is what
  // makes block replay (validator/network) reproduce the producer's order.
  std::vector<size_t> order(pending_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::map<Address, std::vector<size_t>> by_sender;
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].has_sender) by_sender[pending_[i].sender].push_back(i);
  }
  for (auto& [sender, slots] : by_sender) {
    if (slots.size() < 2) continue;
    std::vector<size_t> sorted = slots;
    std::stable_sort(sorted.begin(), sorted.end(), [this](size_t a, size_t b) {
      return pending_[a].tx.nonce < pending_[b].tx.nonce;
    });
    for (size_t j = 0; j < slots.size(); ++j) order[slots[j]] = sorted[j];
  }

  // Greedy prefix take under the count and gas budgets. Packing stops (does
  // not skip ahead) at the first transaction that would overflow the budget
  // so a sender's nonce sequence is never reordered by deferral.
  std::vector<Transaction> out;
  size_t taken = 0;
  uint64_t budget = gas_budget;
  while (taken < order.size() && out.size() < max_count) {
    const Entry& candidate = pending_[order[taken]];
    if (candidate.tx.gas_limit > budget) break;
    budget -= candidate.tx.gas_limit;
    seen_.erase(HashKey(candidate.tx.Hash()));
    out.push_back(candidate.tx);
    ++taken;
  }

  // Keep the untaken remainder in its (reordered) sequence.
  std::deque<Entry> rest;
  for (size_t i = taken; i < order.size(); ++i) {
    rest.push_back(std::move(pending_[order[i]]));
  }
  pending_ = std::move(rest);
  UpdateDepthGauge();
  return out;
}

}  // namespace onoff::chain
