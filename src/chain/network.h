// A simulated peer-to-peer network: one block-producing authority node
// (Kovan was a PoA testnet) gossips blocks to replica nodes, each of which
// verifies every block by replay before appending it. Replicas therefore
// trust nothing but the genesis allocation and their own execution — the
// property that makes the on-chain contract's guarantees meaningful to the
// protocol's participants.
//
// Gossip optionally routes through a sim::Transport: with no transport set
// (or with the instant transport) delivery is synchronous and lossless —
// identical to the pre-sim behaviour; with a sim::SimTransport every block
// travels the simulated network (latency, loss, partitions, crashes) and
// arrives when the virtual clock says it does.

#ifndef ONOFFCHAIN_CHAIN_NETWORK_H_
#define ONOFFCHAIN_CHAIN_NETWORK_H_

#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "chain/validator.h"
#include "sim/transport.h"

namespace onoff::chain {

class Node {
 public:
  Node(std::string name, ChainConfig config, GenesisAlloc alloc);

  // ---- Producer-side ----
  Result<Hash32> SubmitTransaction(const Transaction& tx) {
    return chain_.SubmitTransaction(tx);
  }
  // Mines the next block from the local pool; the caller gossips it.
  const Block& ProduceBlock() { return chain_.MineBlock(); }

  // ---- Replica-side ----
  // Verifies `block` by replaying it on top of the local chain (checking
  // every header commitment) and appends it on success. Invalid blocks are
  // counted and rejected without corrupting local state.
  Status AcceptBlock(const Block& block);
  // Catches a fresh node up from a block history (initial sync).
  Status SyncFrom(const std::vector<Block>& blocks);

  // ---- Inspection ----
  const std::string& name() const { return name_; }
  Blockchain& chain() { return chain_; }
  const Blockchain& chain() const { return chain_; }
  uint64_t Height() const { return chain_.Height(); }
  Hash32 HeadHash() const { return chain_.blocks().back().Hash(); }
  size_t rejected_blocks() const { return rejected_; }

 private:
  std::string name_;
  GenesisAlloc alloc_;
  Blockchain chain_;
  size_t rejected_ = 0;
};

// The gossip fabric: registered nodes receive every broadcast block.
class Network {
 public:
  void AddNode(Node* node) { nodes_.push_back(node); }

  // Routes block deliveries through `transport` (node names are the
  // endpoints). nullptr restores the synchronous zero-latency default.
  void SetTransport(sim::Transport* transport) { transport_ = transport; }

  // Delivers `block` to every node except `from`. Returns how many nodes
  // accepted it so far: with a synchronous transport that is the final
  // count; with a deferred transport deliveries land as the scheduler runs,
  // so the caller inspects nodes (or obs counters) after driving the clock.
  size_t BroadcastBlock(const Node* from, const Block& block);

  // Convenience: `producer` mines one block and gossips it.
  size_t ProduceAndBroadcast(Node* producer);

  // Replays `source`'s history into `node` (crash-restart or late-join
  // catch-up), bypassing the transport — sync is modelled as a reliable
  // bulk fetch. Returns the number of blocks applied.
  Result<size_t> CatchUp(Node* node, const Node& source);

 private:
  std::vector<Node*> nodes_;
  sim::Transport* transport_ = nullptr;
};

// Approximate gossip wire size of a block (header + transactions, RLP).
size_t BlockWireSize(const Block& block);

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_NETWORK_H_
