#include "chain/chain_audit.h"

#include <sstream>
#include <utility>

#include "rlp/rlp.h"
#include "support/log.h"
#include "trace/trace.h"
#include "trie/trie.h"

namespace onoff::chain {

namespace {

std::string HashHex(const Hash32& h) {
  return ToHex0x(BytesView(h.data(), h.size()));
}

// Trie root over RLP(index) -> payload — the header tx/receipt root shape
// (mirrors MineBlock's computation so the check is an independent replay).
Hash32 IndexedRoot(const std::vector<Bytes>& payloads) {
  trie::Trie t;
  for (size_t i = 0; i < payloads.size(); ++i) {
    Bytes key = rlp::Encode(rlp::Item::Scalar(static_cast<uint64_t>(i)));
    t.Put(key, payloads[i]);
  }
  return t.RootHash();
}

uint64_t AmbientTraceId() { return trace::CurrentContext().trace_id; }

uint64_t TraceIdForTx(const Hash32& tx_hash) {
  if (trace::Tracer* tracer = trace::Tracer::Global()) {
    trace::TraceContext ctx = tracer->ContextForTx(tx_hash);
    if (ctx.valid()) return ctx.trace_id;
  }
  return AmbientTraceId();
}

// ---- conservation --------------------------------------------------------
// Sum of balances == initial sum + recorded mints: transactions move value
// (sender → recipient, sender → coinbase fee) but never create it.
class ConservationInvariant : public BlockInvariant {
 public:
  const char* name() const override { return "conservation"; }

  void OnBlockStart(const std::vector<Transaction>& /*txs*/,
                    const state::WorldState& state) override {
    if (initialized_) return;
    // Lazy baseline: whatever the chain holds when auditing starts (genesis
    // allocations made before the auditor attached).
    expected_ = TotalBalance(state);
    initialized_ = true;
  }

  void OnMint(const Address& /*addr*/, const U256& amount) override {
    if (initialized_) expected_ = expected_ + amount;
    // Pre-baseline mints are folded into the lazy initial sum.
  }

  void OnBlockCommit(const Block& block,
                     const std::vector<Receipt>& /*receipts*/,
                     const state::WorldState& state,
                     obs::Auditor& sink) override {
    U256 actual = TotalBalance(state);
    if (actual == expected_) return;
    obs::ViolationReport report;
    report.invariant = name();
    report.message = "sum of account balances diverged from minted supply";
    report.trace_id = AmbientTraceId();
    report.block_height = block.header.number;
    report.values = {{"expected_total", expected_.ToHex()},
                     {"actual_total", actual.ToHex()}};
    sink.Report(std::move(report));
    // Re-anchor so one corrupted block does not re-report forever.
    expected_ = actual;
  }

 private:
  static U256 TotalBalance(const state::WorldState& state) {
    U256 total;
    for (const Address& addr : state.Addresses()) {
      total = total + state.GetBalance(addr);
    }
    return total;
  }

  bool initialized_ = false;
  U256 expected_;
};

// ---- nonce ---------------------------------------------------------------
// Per-sender monotonicity: a block moves a sender's nonce forward by at most
// its transaction count and at least its successful-transaction count, and
// an account with no transactions in the block keeps its nonce. (Reverted
// calls consume a nonce but report success=false, so the bounds are a range,
// not an equality.)
class NonceInvariant : public BlockInvariant {
 public:
  const char* name() const override { return "nonce"; }

  void OnBlockCommit(const Block& block, const std::vector<Receipt>& receipts,
                     const state::WorldState& state,
                     obs::Auditor& sink) override {
    struct SenderTxs {
      uint64_t count = 0;
      uint64_t successful = 0;
      Hash32 first_tx{};
    };
    std::map<Address, SenderTxs> by_sender;
    for (size_t i = 0; i < block.transactions.size(); ++i) {
      auto sender = block.transactions[i].Sender();
      if (!sender.ok()) continue;  // unsigned txs never reach a block
      SenderTxs& entry = by_sender[*sender];
      if (entry.count == 0) entry.first_tx = block.transactions[i].Hash();
      ++entry.count;
      if (i < receipts.size() && receipts[i].success) ++entry.successful;
    }
    for (const Address& addr : state.Addresses()) {
      uint64_t nonce = state.GetNonce(addr);
      auto tracked = last_nonce_.find(addr);
      if (tracked == last_nonce_.end()) {
        // First sight (new sender, contract created this block at nonce 1):
        // the baseline starts here.
        last_nonce_[addr] = nonce;
        continue;
      }
      uint64_t previous = tracked->second;
      auto txs = by_sender.find(addr);
      uint64_t count = txs != by_sender.end() ? txs->second.count : 0;
      uint64_t successful =
          txs != by_sender.end() ? txs->second.successful : 0;
      // A contract's nonce advances when it CREATEs internally (the betting
      // contract deploying the verified instance), driven by someone else's
      // transaction — only decreases are checkable for code-bearing
      // accounts. EOAs move their nonce exclusively via their own
      // transactions, so the full bounds apply.
      bool is_contract = !state.GetCode(addr).empty();
      std::string problem;
      if (nonce < previous) {
        problem = "account nonce decreased";
      } else if (!is_contract && nonce - previous > count) {
        problem = count == 0
                      ? "account nonce changed with no transaction from it"
                      : "account nonce skipped past its transaction count";
      } else if (!is_contract && nonce - previous < successful) {
        problem = "successful transactions did not all consume a nonce";
      }
      if (!problem.empty()) {
        obs::ViolationReport report;
        report.invariant = name();
        report.message = problem;
        report.block_height = block.header.number;
        if (count > 0) {
          report.tx_hash = HashHex(txs->second.first_tx);
          report.trace_id = TraceIdForTx(txs->second.first_tx);
        } else {
          report.trace_id = AmbientTraceId();
        }
        report.values = {{"account", addr.ToHex()},
                         {"nonce_before", std::to_string(previous)},
                         {"nonce_after", std::to_string(nonce)},
                         {"txs_in_block", std::to_string(count)},
                         {"successful_txs", std::to_string(successful)}};
        sink.Report(std::move(report));
      }
      tracked->second = nonce;
    }
  }

 private:
  std::map<Address, uint64_t> last_nonce_;
};

// ---- settlement ----------------------------------------------------------
// A game id settles at most once, and a settlement that moved the pot paid
// the rightful winner.
class SettlementInvariant : public BlockInvariant {
 public:
  const char* name() const override { return "settlement"; }

  void OnSettlement(const SettlementAudit& settlement,
                    obs::Auditor& sink) override {
    if (!settlement.resolved) return;  // aborts/refunds/locked pots
    if (!settled_games_.insert(settlement.game).second) {
      obs::ViolationReport report;
      report.invariant = name();
      report.message = "game settled twice";
      report.trace_id = settlement.trace_id;
      report.values = {{"game", settlement.game.ToHex()},
                       {"settlement", settlement.settlement}};
      sink.Report(std::move(report));
      return;
    }
    if (!settlement.correct_payout) {
      obs::ViolationReport report;
      report.invariant = name();
      report.message = "settlement completed but the pot missed the winner";
      report.trace_id = settlement.trace_id;
      report.values = {{"game", settlement.game.ToHex()},
                       {"settlement", settlement.settlement}};
      sink.Report(std::move(report));
    }
  }

 private:
  std::set<Address> settled_games_;
};

// ---- receipt_root --------------------------------------------------------
// The committed header's tx/receipt roots must match an independent replay
// over the block body — the speculation/commit consistency check.
class ReceiptRootInvariant : public BlockInvariant {
 public:
  const char* name() const override { return "receipt_root"; }

  void OnBlockCommit(const Block& block, const std::vector<Receipt>& receipts,
                     const state::WorldState& /*state*/,
                     obs::Auditor& sink) override {
    std::vector<Bytes> tx_payloads;
    tx_payloads.reserve(block.transactions.size());
    for (const Transaction& tx : block.transactions) {
      tx_payloads.push_back(tx.Encode());
    }
    std::vector<Bytes> receipt_payloads;
    receipt_payloads.reserve(receipts.size());
    for (const Receipt& receipt : receipts) {
      receipt_payloads.push_back(receipt.Encode());
    }
    Check(block, "tx_root", block.header.tx_root, IndexedRoot(tx_payloads),
          sink);
    Check(block, "receipt_root", block.header.receipt_root,
          IndexedRoot(receipt_payloads), sink);
  }

 private:
  void Check(const Block& block, const char* which, const Hash32& header_root,
             const Hash32& body_root, obs::Auditor& sink) {
    if (header_root == body_root) return;
    obs::ViolationReport report;
    report.invariant = name();
    report.message = std::string(which) +
                     " in the committed header does not match the block body";
    report.trace_id = AmbientTraceId();
    report.block_height = block.header.number;
    report.values = {{"field", which},
                     {"header_root", HashHex(header_root)},
                     {"recomputed_root", HashHex(body_root)}};
    sink.Report(std::move(report));
  }
};

// ---- timer ---------------------------------------------------------------
// Block timestamps never go backwards, and sim-bound disputes respect the
// challenge window on the virtual clock: a resolution after the window (or
// a timeout declared before it closed) means the dispute timer is broken.
class TimerInvariant : public BlockInvariant {
 public:
  const char* name() const override { return "timer"; }

  void OnBlockCommit(const Block& block,
                     const std::vector<Receipt>& /*receipts*/,
                     const state::WorldState& /*state*/,
                     obs::Auditor& sink) override {
    if (block.header.timestamp < last_timestamp_) {
      obs::ViolationReport report;
      report.invariant = name();
      report.message = "block timestamp went backwards";
      report.trace_id = AmbientTraceId();
      report.block_height = block.header.number;
      report.values = {
          {"previous_timestamp", std::to_string(last_timestamp_)},
          {"block_timestamp", std::to_string(block.header.timestamp)}};
      sink.Report(std::move(report));
    }
    last_timestamp_ = block.header.timestamp;
  }

  void OnSettlement(const SettlementAudit& settlement,
                    obs::Auditor& sink) override {
    if (settlement.t3_ms == 0) return;  // unbound run: no virtual deadlines
    uint64_t window_end =
        settlement.t3_ms + settlement.challenge_period_ms;
    std::string problem;
    if (settlement.settlement == "disputed" && settlement.resolved &&
        settlement.settled_ms > window_end) {
      problem = "dispute resolved after the challenge window closed";
    } else if (settlement.settlement == "dispute-timed-out" &&
               settlement.settled_ms < window_end) {
      problem = "dispute declared timed out before the window closed";
    } else if (settlement.settlement == "optimistic" &&
               settlement.settled_ms > settlement.t3_ms) {
      problem = "optimistic settlement landed after the T3 deadline";
    }
    if (problem.empty()) return;
    obs::ViolationReport report;
    report.invariant = name();
    report.message = problem;
    report.trace_id = settlement.trace_id;
    report.values = {
        {"game", settlement.game.ToHex()},
        {"settled_ms", std::to_string(settlement.settled_ms)},
        {"t3_ms", std::to_string(settlement.t3_ms)},
        {"challenge_period_ms",
         std::to_string(settlement.challenge_period_ms)}};
    sink.Report(std::move(report));
  }

 private:
  uint64_t last_timestamp_ = 0;
};

bool SpecEnables(const std::string& spec, const char* name) {
  if (spec == "all") return true;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token == name) return true;
  }
  return false;
}

}  // namespace

std::vector<std::unique_ptr<BlockInvariant>> MakeBuiltinInvariants(
    const std::string& spec) {
  std::vector<std::unique_ptr<BlockInvariant>> invariants;
  if (SpecEnables(spec, "conservation")) {
    invariants.push_back(std::make_unique<ConservationInvariant>());
  }
  if (SpecEnables(spec, "nonce")) {
    invariants.push_back(std::make_unique<NonceInvariant>());
  }
  if (SpecEnables(spec, "settlement")) {
    invariants.push_back(std::make_unique<SettlementInvariant>());
  }
  if (SpecEnables(spec, "receipt_root")) {
    invariants.push_back(std::make_unique<ReceiptRootInvariant>());
  }
  if (SpecEnables(spec, "timer")) {
    invariants.push_back(std::make_unique<TimerInvariant>());
  }
  return invariants;
}

ChainAuditor::ChainAuditor(const std::string& spec,
                           obs::AuditorConfig sink_config)
    : sink_(std::move(sink_config)),
      invariants_(MakeBuiltinInvariants(spec)) {
  if (invariants_.empty()) {
    ONOFF_LOG(log::Level::kWarn, "audit",
              "audit spec '%s' enables no invariants", spec.c_str());
  }
}

void ChainAuditor::OnBlockStart(const std::vector<Transaction>& txs,
                                const state::WorldState& state) {
  for (auto& invariant : invariants_) invariant->OnBlockStart(txs, state);
}

void ChainAuditor::OnBlockCommit(const Block& block,
                                 const std::vector<Receipt>& receipts,
                                 const state::WorldState& state) {
  for (auto& invariant : invariants_) {
    invariant->OnBlockCommit(block, receipts, state, sink_);
  }
}

void ChainAuditor::OnMint(const Address& addr, const U256& amount) {
  for (auto& invariant : invariants_) invariant->OnMint(addr, amount);
}

void ChainAuditor::OnSettlement(const SettlementAudit& settlement) {
  for (auto& invariant : invariants_) {
    invariant->OnSettlement(settlement, sink_);
  }
}

void ChainAuditor::AddInvariant(std::unique_ptr<BlockInvariant> invariant) {
  invariants_.push_back(std::move(invariant));
}

}  // namespace onoff::chain
