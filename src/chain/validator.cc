#include "chain/validator.h"

#include "obs/metrics.h"
#include "support/thread_pool.h"

namespace onoff::chain {

namespace {

std::string BlockRef(uint64_t number) {
  return "block " + std::to_string(number);
}

// Counts verification outcomes and times the whole replay.
Status RecordVerifyOutcome(Status st) {
  static obs::Counter* ok_count =
      obs::GetCounterOrNull("validator.chains_verified");
  static obs::Counter* failed_count =
      obs::GetCounterOrNull("validator.verify_failures");
  if (st.ok()) {
    if (ok_count != nullptr) ok_count->Inc();
  } else {
    if (failed_count != nullptr) failed_count->Inc();
  }
  return st;
}

// Warms every transaction's sender memo across the worker pool so the
// serial replay below never blocks on ECDSA. Failed recoveries are not
// cached, so the replay re-derives (and rejects) them with the exact
// serial-path status.
void PrerecoverSenders(const std::vector<Block>& blocks) {
  std::vector<const Transaction*> txs;
  for (size_t i = 1; i < blocks.size(); ++i) {
    for (const Transaction& tx : blocks[i].transactions) txs.push_back(&tx);
  }
  if (txs.size() < 2) return;
  ThreadPool::Shared().ParallelFor(
      txs.size(), [&txs](size_t i) { (void)txs[i]->Sender(); });
  static obs::Counter* prerecovered =
      obs::GetCounterOrNull("validator.prerecovered_senders");
  if (prerecovered != nullptr) prerecovered->Inc(txs.size());
}

Status VerifyChainImpl(const std::vector<Block>& blocks,
                       const GenesisAlloc& alloc, const ChainConfig& config,
                       const VerifyOptions& options) {
  if (blocks.empty()) {
    return Status::InvalidArgument("chain has no genesis block");
  }
  if (options.parallel_sender_recovery) PrerecoverSenders(blocks);

  // Rebuild from genesis on a replica node.
  Blockchain replica(config);
  for (const auto& [addr, amount] : alloc) {
    replica.FundAccount(addr, amount);
  }
  if (replica.blocks()[0].Hash() != blocks[0].Hash()) {
    return Status::VerificationFailed(
        "genesis mismatch: wrong config or allocation");
  }

  static obs::Histogram* block_us = obs::GetHistogramOrNull(
      "validator.verify_block_us", obs::DefaultTimeBucketsUs());
  for (size_t i = 1; i < blocks.size(); ++i) {
    obs::ScopedTimer block_span(block_us);
    const Block& block = blocks[i];
    if (block.header.number != i) {
      return Status::VerificationFailed(BlockRef(i) + ": bad block number");
    }
    if (block.header.parent_hash != blocks[i - 1].Hash()) {
      return Status::VerificationFailed(BlockRef(i) +
                                        ": parent hash mismatch");
    }
    if (block.header.timestamp < blocks[i - 1].header.timestamp) {
      return Status::VerificationFailed(BlockRef(i) +
                                        ": timestamp went backwards");
    }
    // Re-execute the block's transactions at its recorded timestamp.
    replica.AdvanceTimeTo(block.header.timestamp);
    for (const Transaction& tx : block.transactions) {
      Status st = replica.SubmitTransaction(tx).status();
      if (!st.ok()) {
        return Status::VerificationFailed(BlockRef(i) +
                                          ": transaction rejected on replay: " +
                                          st.message());
      }
    }
    const Block& replayed = replica.MineBlock();
    if (replayed.transactions.size() != block.transactions.size()) {
      return Status::VerificationFailed(BlockRef(i) +
                                        ": transaction count diverged");
    }
    if (replayed.header.state_root != block.header.state_root) {
      return Status::VerificationFailed(BlockRef(i) + ": state root mismatch");
    }
    if (replayed.header.tx_root != block.header.tx_root) {
      return Status::VerificationFailed(BlockRef(i) + ": tx root mismatch");
    }
    if (replayed.header.receipt_root != block.header.receipt_root) {
      return Status::VerificationFailed(BlockRef(i) +
                                        ": receipt root mismatch");
    }
    if (replayed.header.gas_used != block.header.gas_used) {
      return Status::VerificationFailed(BlockRef(i) + ": gas used mismatch");
    }
    if (replayed.Hash() != block.Hash()) {
      return Status::VerificationFailed(BlockRef(i) + ": header hash mismatch");
    }
  }
  return Status::OK();
}

}  // namespace

Status VerifyChain(const std::vector<Block>& blocks, const GenesisAlloc& alloc,
                   const ChainConfig& config) {
  return VerifyChain(blocks, alloc, config, VerifyOptions{});
}

Status VerifyChain(const std::vector<Block>& blocks, const GenesisAlloc& alloc,
                   const ChainConfig& config, const VerifyOptions& options) {
  static obs::Histogram* replay_us = obs::GetHistogramOrNull(
      "validator.verify_replay_us", obs::DefaultTimeBucketsUs());
  obs::ScopedTimer replay_span(replay_us);
  return RecordVerifyOutcome(VerifyChainImpl(blocks, alloc, config, options));
}

Status VerifyChain(const Blockchain& chain, const GenesisAlloc& alloc) {
  return VerifyChain(chain.blocks(), alloc, chain.config());
}

}  // namespace onoff::chain
