// Signed transactions (pre-EIP-155 format, as the paper's era tooling used):
// RLP([nonce, gasPrice, gasLimit, to, value, data]) is hashed for signing,
// RLP([... , v, r, s]) is the wire format and transaction hash preimage.

#ifndef ONOFFCHAIN_CHAIN_TRANSACTION_H_
#define ONOFFCHAIN_CHAIN_TRANSACTION_H_

#include <cstdint>
#include <optional>

#include "crypto/keccak.h"
#include "crypto/secp256k1.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::chain {

class Transaction {
 public:
  Transaction() = default;

  uint64_t nonce = 0;
  U256 gas_price;
  uint64_t gas_limit = 0;
  // nullopt = contract-creation transaction.
  std::optional<Address> to;
  U256 value;
  Bytes data;
  secp256k1::Signature signature;

  bool IsContractCreation() const { return !to.has_value(); }

  // keccak of the unsigned RLP — what gets signed.
  Hash32 SigningHash() const;
  // keccak of the signed RLP — the transaction id.
  Hash32 Hash() const;
  // Full signed RLP encoding.
  Bytes Encode() const;
  static Result<Transaction> Decode(BytesView rlp_data);

  // Signs in place with `key`.
  void Sign(const secp256k1::PrivateKey& key);
  // Recovers the sender from the signature; fails on unsigned/garbage.
  Result<Address> Sender() const;

  // Intrinsic gas: 21000 + calldata bytes (4 per zero, 68 per non-zero)
  // + 32000 for contract creation.
  uint64_t IntrinsicGas() const;
};

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_TRANSACTION_H_
