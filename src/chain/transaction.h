// Signed transactions (pre-EIP-155 format, as the paper's era tooling used):
// RLP([nonce, gasPrice, gasLimit, to, value, data]) is hashed for signing,
// RLP([... , v, r, s]) is the wire format and transaction hash preimage.

#ifndef ONOFFCHAIN_CHAIN_TRANSACTION_H_
#define ONOFFCHAIN_CHAIN_TRANSACTION_H_

#include <cstdint>
#include <optional>

#include "crypto/keccak.h"
#include "crypto/secp256k1.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::chain {

class Transaction {
 public:
  Transaction() = default;

  uint64_t nonce = 0;
  U256 gas_price;
  uint64_t gas_limit = 0;
  // nullopt = contract-creation transaction.
  std::optional<Address> to;
  U256 value;
  Bytes data;
  secp256k1::Signature signature;

  bool IsContractCreation() const { return !to.has_value(); }

  // keccak of the unsigned RLP — what gets signed.
  Hash32 SigningHash() const;
  // keccak of the signed RLP — the transaction id.
  Hash32 Hash() const;
  // Full signed RLP encoding.
  Bytes Encode() const;
  static Result<Transaction> Decode(BytesView rlp_data);

  // Signs in place with `key`.
  void Sign(const secp256k1::PrivateKey& key);
  // Recovers the sender from the signature; fails on unsigned/garbage.
  // The first successful recovery is memoized keyed by (signing hash,
  // signature), so mutating any signed field or the signature invalidates
  // the cache automatically, and copies carry the warm cache with them
  // (pool/block copies never re-run ECDSA). Distinct objects may recover
  // concurrently; concurrent calls on one object are not synchronized.
  Result<Address> Sender() const;

  // Intrinsic gas: 21000 + calldata bytes (4 per zero, 68 per non-zero)
  // + 32000 for contract creation.
  uint64_t IntrinsicGas() const;

 private:
  // Sender() memo; mutable because recovery is logically const.
  mutable bool sender_cached_ = false;
  mutable Hash32 sender_digest_{};
  mutable secp256k1::Signature sender_sig_;
  mutable Address sender_;
};

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_TRANSACTION_H_
