// The chain's runtime invariant auditor: pluggable protocol-level invariants
// evaluated at block-commit and settlement boundaries, reporting structured
// violations into an obs::Auditor sink (which counts, logs, dumps a
// flight-recorder triage bundle, and aborts under fail-fast). This is the
// watchdog the adversarial soak needs — the properties the paper's security
// argument rests on, checked on every run instead of asserted in one test.
//
// Built-in invariants (spec names for ChainConfig::audit_invariants):
//   conservation  — sum of account balances equals genesis plus recorded
//                   mints: fees move value to the coinbase, they never
//                   create it (checked after every block; O(accounts))
//   nonce         — per-sender nonce monotonicity: a block advances a
//                   sender's nonce by at most its transaction count, at
//                   least its successful count, and never changes the nonce
//                   of an account with no transactions in the block
//   settlement    — no double settlement of a game id, and a completed
//                   settlement pays the rightful winner
//   receipt_root  — the committed header's tx/receipt roots match the
//                   block body (speculation/commit consistency; the
//                   parallel-equivalence replay reports here before abort)
//   timer         — block timestamps are monotonic; sim-bound disputes
//                   resolve inside the challenge window on the virtual clock
//
// "all" (or the ONOFF_AUDIT environment variable, which CI sets) enables
// every invariant.

#ifndef ONOFFCHAIN_CHAIN_CHAIN_AUDIT_H_
#define ONOFFCHAIN_CHAIN_CHAIN_AUDIT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chain/block.h"
#include "obs/audit.h"
#include "state/world_state.h"

namespace onoff::chain {

// Settlement-boundary facts, reported by the protocol driver when a game
// reaches a terminal state. The on-chain contract address is the game id.
struct SettlementAudit {
  Address game;
  std::string settlement;  // SettlementName() string
  // True when the settlement moved the pot (optimistic reassign or a
  // completed dispute resolution) — the paths where double settlement and
  // wrong payouts are meaningful.
  bool resolved = false;
  bool correct_payout = false;
  // Virtual-clock facts (0 when the run was not sim-bound): the T3
  // deadline, the settle instant, and the challenge window length.
  uint64_t t3_ms = 0;
  uint64_t settled_ms = 0;
  uint64_t challenge_period_ms = 0;
  uint64_t trace_id = 0;
};

// One pluggable invariant. Stateful across blocks (the auditor owns one
// instance per invariant per chain); not thread-safe — the chain calls these
// from its mining thread only.
class BlockInvariant {
 public:
  virtual ~BlockInvariant() = default;
  virtual const char* name() const = 0;
  // Pre-execution capture point: the transactions about to run against the
  // pre-block world state.
  virtual void OnBlockStart(const std::vector<Transaction>& /*txs*/,
                            const state::WorldState& /*state*/) {}
  // Post-commit check point: the block is fully formed (roots computed) and
  // the state is post-block.
  virtual void OnBlockCommit(const Block& /*block*/,
                             const std::vector<Receipt>& /*receipts*/,
                             const state::WorldState& /*state*/,
                             obs::Auditor& /*sink*/) {}
  virtual void OnMint(const Address& /*addr*/, const U256& /*amount*/) {}
  virtual void OnSettlement(const SettlementAudit& /*settlement*/,
                            obs::Auditor& /*sink*/) {}
};

// The registry: owns the enabled invariants and the report sink, fans the
// chain's hook calls out to them. `spec` is "all" or a comma-separated
// subset of the names above (unknown names are ignored with a warning).
class ChainAuditor {
 public:
  ChainAuditor(const std::string& spec, obs::AuditorConfig sink_config);

  void OnBlockStart(const std::vector<Transaction>& txs,
                    const state::WorldState& state);
  void OnBlockCommit(const Block& block, const std::vector<Receipt>& receipts,
                     const state::WorldState& state);
  void OnMint(const Address& addr, const U256& amount);
  void OnSettlement(const SettlementAudit& settlement);

  // Custom invariants plug in here (the soak fleet adds scenario-specific
  // ones).
  void AddInvariant(std::unique_ptr<BlockInvariant> invariant);

  obs::Auditor& sink() { return sink_; }
  uint64_t violations() const { return sink_.violations(); }
  size_t invariant_count() const { return invariants_.size(); }

 private:
  obs::Auditor sink_;
  std::vector<std::unique_ptr<BlockInvariant>> invariants_;
};

// The built-in invariants for `spec` (factored out so tests can build a
// corpus against individual invariants).
std::vector<std::unique_ptr<BlockInvariant>> MakeBuiltinInvariants(
    const std::string& spec);

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_CHAIN_AUDIT_H_
