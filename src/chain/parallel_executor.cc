#include "chain/parallel_executor.h"

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "state/speculative_state.h"
#include "trace/trace.h"

namespace onoff::chain {

std::vector<Receipt> ParallelExecutor::ExecuteBlock(
    state::WorldState& state, const std::vector<Transaction>& txs,
    const ExecFn& execute, ParallelExecStats* stats) {
  static obs::Counter* waves = obs::GetCounterOrNull("chain.parallel.waves");
  static obs::Counter* speculated =
      obs::GetCounterOrNull("chain.parallel.speculated");
  static obs::Counter* committed =
      obs::GetCounterOrNull("chain.parallel.committed");
  static obs::Counter* conflicts =
      obs::GetCounterOrNull("chain.parallel.conflicts");
  static obs::Counter* reexecuted =
      obs::GetCounterOrNull("chain.parallel.reexecuted");
  static obs::Histogram* wave_us = obs::GetHistogramOrNull(
      "chain.parallel.wave_us", obs::DefaultTimeBucketsUs());

  ParallelExecStats s;  // this wave only; accumulated into *stats at the end

  trace::Tracer* tracer = trace::Tracer::Global();
  trace::ScopedSpan wave_span(tracer, trace::CurrentContext(), "exec.wave",
                              "chain",
                              {{"txs", std::to_string(txs.size())}});
  obs::ScopedTimer wave_timer(wave_us);
  if (waves != nullptr) waves->Inc();

  // Speculation wave: every transaction runs against its own overlay of the
  // frozen pre-block state. The overlays never write the base, so the wave
  // is race-free by construction; each transaction's sender cache is warmed
  // only by its own worker.
  size_t n = txs.size();
  std::vector<std::unique_ptr<state::SpeculativeState>> overlays(n);
  std::vector<Receipt> receipts(n);
  ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::Shared();
  pool.ParallelFor(n, [&](size_t i) {
    overlays[i] = std::make_unique<state::SpeculativeState>(state);
    receipts[i] = execute(*overlays[i], txs[i]);
  });
  s.speculated += n;
  if (speculated != nullptr) speculated->Inc(n);

  // Ordered commit: transaction i's speculation is committed verbatim iff
  // its reads saw nothing any earlier transaction wrote; otherwise its
  // overlay is discarded and it re-executes against the current committed
  // state (the re-execution also runs on an overlay purely to capture the
  // write set later conflict checks need — it commits unconditionally).
  state::AccessSet committed_writes;
  for (size_t i = 0; i < n; ++i) {
    if (!overlays[i]->reads().Intersects(committed_writes)) {
      overlays[i]->ApplyTo(state);
      committed_writes.MergeFrom(overlays[i]->writes());
      ++s.committed;
    } else {
      ++s.conflicts;
      ++s.reexecuted;
      state::SpeculativeState retry(state);
      receipts[i] = execute(retry, txs[i]);
      retry.ApplyTo(state);
      committed_writes.MergeFrom(retry.writes());
    }
    state.ClearJournal();
    overlays[i].reset();
  }
  if (committed != nullptr) committed->Inc(s.committed);
  if (conflicts != nullptr) conflicts->Inc(s.conflicts);
  if (reexecuted != nullptr) reexecuted->Inc(s.reexecuted);
  wave_span.AddArg("conflicts", std::to_string(s.conflicts));
  wave_span.AddArg("committed", std::to_string(s.committed));
  if (stats != nullptr) {
    stats->speculated += s.speculated;
    stats->committed += s.committed;
    stats->conflicts += s.conflicts;
    stats->reexecuted += s.reexecuted;
  }
  return receipts;
}

}  // namespace onoff::chain
