#include "chain/parallel_executor.h"

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "state/speculative_state.h"
#include "trace/trace.h"

namespace onoff::chain {

namespace {

// Pre-commit static schedule: tx i is clear iff every hint up to and
// including i is known and i's hinted reads are disjoint from the union of
// earlier hinted writes. Clear txs commit verbatim with no dynamic conflict
// check: dynamic ⊆ static on both sides makes static disjointness imply
// dynamic disjointness, and the hints are state-independent so they also
// bound any re-executed predecessor. An unknown (⊤) hint poisons everything
// after it.
std::vector<char> PlanStaticSchedule(const std::vector<TxAccessHint>& hints) {
  std::vector<char> clear(hints.size(), 0);
  state::AccessSet hinted_writes;
  bool prefix_known = true;
  for (size_t i = 0; i < hints.size(); ++i) {
    const TxAccessHint& h = hints[i];
    if (!h.known) prefix_known = false;
    if (prefix_known && !h.reads.Intersects(hinted_writes)) clear[i] = 1;
    if (h.known) hinted_writes.MergeFrom(h.writes);
  }
  return clear;
}

}  // namespace

std::vector<Receipt> ParallelExecutor::ExecuteBlock(
    state::WorldState& state, const std::vector<Transaction>& txs,
    const ExecFn& execute, ParallelExecStats* stats,
    const std::vector<TxAccessHint>* hints, bool check_containment) {
  static obs::Counter* waves = obs::GetCounterOrNull("chain.parallel.waves");
  static obs::Counter* speculated =
      obs::GetCounterOrNull("chain.parallel.speculated");
  static obs::Counter* committed =
      obs::GetCounterOrNull("chain.parallel.committed");
  static obs::Counter* conflicts =
      obs::GetCounterOrNull("chain.parallel.conflicts");
  static obs::Counter* reexecuted =
      obs::GetCounterOrNull("chain.parallel.reexecuted");
  static obs::Counter* static_clear =
      obs::GetCounterOrNull("chain.parallel.static_clear");
  static obs::Counter* hint_violations =
      obs::GetCounterOrNull("chain.parallel.hint_violations");
  static obs::Histogram* wave_us = obs::GetHistogramOrNull(
      "chain.parallel.wave_us", obs::DefaultTimeBucketsUs());

  ParallelExecStats s;  // this wave only; accumulated into *stats at the end

  trace::Tracer* tracer = trace::Tracer::Global();
  trace::ScopedSpan wave_span(tracer, trace::CurrentContext(), "exec.wave",
                              "chain",
                              {{"txs", std::to_string(txs.size())}});
  obs::ScopedTimer wave_timer(wave_us);
  if (waves != nullptr) waves->Inc();

  // Speculation wave: every transaction runs against its own overlay of the
  // frozen pre-block state. The overlays never write the base, so the wave
  // is race-free by construction; each transaction's sender cache is warmed
  // only by its own worker.
  size_t n = txs.size();
  std::vector<std::unique_ptr<state::SpeculativeState>> overlays(n);
  std::vector<Receipt> receipts(n);
  ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::Shared();
  pool.ParallelFor(n, [&](size_t i) {
    overlays[i] = std::make_unique<state::SpeculativeState>(state);
    receipts[i] = execute(*overlays[i], txs[i]);
  });
  s.speculated += n;
  if (speculated != nullptr) speculated->Inc(n);

  // Static schedule from the analyzer's hints, when provided for the whole
  // block. `hints_trusted` drops to false on the first containment
  // violation (soundness-oracle mode), downgrading the rest of the block to
  // the plain dynamic conflict check.
  const bool have_hints = hints != nullptr && hints->size() == n;
  std::vector<char> clear =
      have_hints ? PlanStaticSchedule(*hints) : std::vector<char>(n, 0);
  bool hints_trusted = true;

  // Ordered commit: transaction i's speculation is committed verbatim iff
  // it is statically clear or its reads saw nothing any earlier transaction
  // wrote; otherwise its overlay is discarded and it re-executes against
  // the current committed state (the re-execution also runs on an overlay
  // purely to capture the write set later conflict checks need — it
  // commits unconditionally).
  state::AccessSet committed_writes;
  for (size_t i = 0; i < n; ++i) {
    if (check_containment && have_hints && (*hints)[i].known) {
      const TxAccessHint& h = (*hints)[i];
      if (!h.reads.Covers(overlays[i]->reads()) ||
          !h.writes.Covers(overlays[i]->writes())) {
        ++s.hint_violations;
        hints_trusted = false;
      }
    }
    if ((hints_trusted && clear[i] != 0) ||
        !overlays[i]->reads().Intersects(committed_writes)) {
      if (hints_trusted && clear[i] != 0) ++s.static_clear;
      overlays[i]->ApplyTo(state);
      committed_writes.MergeFrom(overlays[i]->writes());
      ++s.committed;
    } else {
      ++s.conflicts;
      ++s.reexecuted;
      state::SpeculativeState retry(state);
      receipts[i] = execute(retry, txs[i]);
      if (check_containment && have_hints && (*hints)[i].known) {
        const TxAccessHint& h = (*hints)[i];
        if (!h.reads.Covers(retry.reads()) ||
            !h.writes.Covers(retry.writes())) {
          ++s.hint_violations;
          hints_trusted = false;
        }
      }
      retry.ApplyTo(state);
      committed_writes.MergeFrom(retry.writes());
    }
    state.ClearJournal();
    overlays[i].reset();
  }
  if (committed != nullptr) committed->Inc(s.committed);
  if (conflicts != nullptr) conflicts->Inc(s.conflicts);
  if (reexecuted != nullptr) reexecuted->Inc(s.reexecuted);
  if (static_clear != nullptr && s.static_clear > 0)
    static_clear->Inc(s.static_clear);
  if (hint_violations != nullptr && s.hint_violations > 0)
    hint_violations->Inc(s.hint_violations);
  wave_span.AddArg("conflicts", std::to_string(s.conflicts));
  wave_span.AddArg("committed", std::to_string(s.committed));
  wave_span.AddArg("static_clear", std::to_string(s.static_clear));
  if (stats != nullptr) {
    stats->speculated += s.speculated;
    stats->committed += s.committed;
    stats->conflicts += s.conflicts;
    stats->reexecuted += s.reexecuted;
    stats->static_clear += s.static_clear;
    stats->hint_violations += s.hint_violations;
  }
  return receipts;
}

}  // namespace onoff::chain
