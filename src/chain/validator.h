// Chain verification: replays a block sequence from the genesis allocation
// on a fresh state and checks every header commitment (parent hash, state
// root, tx/receipt roots, gas used). This is what an honest full node does
// when it syncs — and what makes the on-chain contract's state trustworthy
// to the protocol's participants without trusting the block producer.

#ifndef ONOFFCHAIN_CHAIN_VALIDATOR_H_
#define ONOFFCHAIN_CHAIN_VALIDATOR_H_

#include <utility>
#include <vector>

#include "chain/blockchain.h"
#include "support/status.h"

namespace onoff::chain {

// The genesis allocation a verifier starts from.
using GenesisAlloc = std::vector<std::pair<Address, U256>>;

// Replays `blocks` (block 0 must be the genesis produced by a Blockchain
// with `config` and `alloc`) and verifies all header commitments. Returns
// OK iff the whole chain is internally consistent and reproducible.
Status VerifyChain(const std::vector<Block>& blocks, const GenesisAlloc& alloc,
                   const ChainConfig& config);

// Convenience: verifies a live chain against its own config.
Status VerifyChain(const Blockchain& chain, const GenesisAlloc& alloc);

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_VALIDATOR_H_
