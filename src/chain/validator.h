// Chain verification: replays a block sequence from the genesis allocation
// on a fresh state and checks every header commitment (parent hash, state
// root, tx/receipt roots, gas used). This is what an honest full node does
// when it syncs — and what makes the on-chain contract's state trustworthy
// to the protocol's participants without trusting the block producer.

#ifndef ONOFFCHAIN_CHAIN_VALIDATOR_H_
#define ONOFFCHAIN_CHAIN_VALIDATOR_H_

#include <utility>
#include <vector>

#include "chain/blockchain.h"
#include "support/status.h"

namespace onoff::chain {

// The genesis allocation a verifier starts from.
using GenesisAlloc = std::vector<std::pair<Address, U256>>;

struct VerifyOptions {
  // Pre-recover every transaction sender across all blocks on the shared
  // thread pool before replaying. The replay itself stays strictly serial
  // and deterministic: recoveries are memoized per transaction, so the
  // replay consumes identical values whether they were computed in
  // parallel up front or serially on demand (failed recoveries are never
  // cached and are re-derived — and re-rejected — serially).
  bool parallel_sender_recovery = true;
};

// Replays `blocks` (block 0 must be the genesis produced by a Blockchain
// with `config` and `alloc`) and verifies all header commitments. Returns
// OK iff the whole chain is internally consistent and reproducible.
Status VerifyChain(const std::vector<Block>& blocks, const GenesisAlloc& alloc,
                   const ChainConfig& config);
Status VerifyChain(const std::vector<Block>& blocks, const GenesisAlloc& alloc,
                   const ChainConfig& config, const VerifyOptions& options);

// Convenience: verifies a live chain against its own config.
Status VerifyChain(const Blockchain& chain, const GenesisAlloc& alloc);

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_VALIDATOR_H_
