#include "chain/blockchain.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "analysis/access_summary.h"
#include "analysis/analyzer.h"
#include "chain/parallel_executor.h"
#include "evm/gas.h"
#include "obs/metrics.h"
#include "rlp/rlp.h"
#include "support/log.h"
#include "trace/bounds.h"
#include "trace/span_hook.h"
#include "trace/trace.h"
#include "trie/trie.h"

namespace onoff::chain {

namespace {

std::string HashKey(const Hash32& h) {
  return std::string(reinterpret_cast<const char*>(h.data()), h.size());
}

// Trie root over RLP(index) -> payload, Ethereum's tx/receipt root shape.
Hash32 IndexedRoot(const std::vector<Bytes>& payloads) {
  trie::Trie t;
  for (size_t i = 0; i < payloads.size(); ++i) {
    Bytes key = rlp::Encode(rlp::Item::Scalar(static_cast<uint64_t>(i)));
    t.Put(key, payloads[i]);
  }
  return t.RootHash();
}

}  // namespace

Blockchain::Blockchain(ChainConfig config)
    : config_(std::move(config)), now_(config_.genesis_timestamp) {
  // The pool packs each sender's transactions as a contiguous nonce run
  // from the account nonce; anything below it is unminable and dropped.
  pool_.set_base_nonce_provider(
      [this](const Address& addr) { return state_.GetNonce(addr); });
  if (config_.exec_workers > 0) {
    exec_pool_ = std::make_unique<ThreadPool>(config_.exec_workers);
  }
  if (config_.persist_state) {
    node_store_ = std::make_unique<storage::NodeStore>(config_.state_db_path);
    Status st = node_store_->Open();
    if (!st.ok()) {
      ONOFF_LOG(log::Level::kError, "chain",
                "cannot open state node store at '%s': %s — persistence off",
                config_.state_db_path.c_str(), st.message().c_str());
      node_store_.reset();
    }
  }
  // Invariant auditing: an explicit config wins; otherwise $ONOFF_AUDIT
  // supplies the spec and makes violations fatal (the CI posture).
  std::string audit_spec = config_.audit_invariants;
  bool audit_fatal = config_.audit_fatal;
  if (audit_spec.empty()) {
    const char* env = std::getenv("ONOFF_AUDIT");
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
      audit_spec = env;
      audit_fatal = true;
    }
  }
  if (!audit_spec.empty()) {
    obs::AuditorConfig sink_config;
    sink_config.fail_fast = audit_fatal;
    auditor_ = std::make_unique<ChainAuditor>(audit_spec, sink_config);
  }
  // An audited chain without a recorder would detect violations but capture
  // no evidence, so auditing implies a default-sized recorder unless one is
  // already installed process-wide.
  size_t recorder_slots = config_.flight_recorder_events;
  if (recorder_slots == 0 && auditor_ != nullptr &&
      obs::FlightRecorder::Global() == nullptr) {
    recorder_slots = 1024;
  }
  if (recorder_slots > 0) {
    obs::FlightRecorderConfig recorder_config;
    recorder_config.capacity = recorder_slots;
    flight_recorder_ = std::make_unique<obs::FlightRecorder>(recorder_config);
    previous_recorder_ =
        obs::FlightRecorder::InstallGlobal(flight_recorder_.get());
  }
  if (config_.timeseries_interval_ms > 0) {
    obs::TimeseriesConfig sampler_config;
    sampler_config.interval_ms = config_.timeseries_interval_ms;
    timeseries_ = std::make_unique<obs::TimeseriesSampler>(
        obs::Registry::Global(), sampler_config);
  }
  Block genesis;
  genesis.header.number = 0;
  genesis.header.timestamp = now_;
  genesis.header.coinbase = config_.coinbase;
  genesis.header.gas_limit = config_.block_gas_limit;
  genesis.header.state_root = state_.StateRoot();
  genesis.header.tx_root = trie::Trie::EmptyRoot();
  genesis.header.receipt_root = trie::Trie::EmptyRoot();
  if (node_store_ != nullptr) {
    Status st = state_.PersistCommitted(*node_store_, 0);
    if (st.ok()) st = node_store_->Flush();
    if (!st.ok()) {
      ONOFF_LOG(log::Level::kWarn, "chain", "genesis state persist failed: %s",
                st.message().c_str());
    }
  }
  blocks_.push_back(std::move(genesis));
}

Blockchain::~Blockchain() {
  if (flight_recorder_ != nullptr) {
    obs::FlightRecorder::InstallGlobal(previous_recorder_);
  }
}

void Blockchain::FundAccount(const Address& addr, const U256& amount) {
  state_.AddBalance(addr, amount);
  state_.ClearJournal();
  if (auditor_ != nullptr) auditor_->OnMint(addr, amount);
}

Result<Hash32> Blockchain::SubmitTransaction(const Transaction& tx) {
  // Validates the signature and warms the sender memo; the pool entry and
  // ApplyTransaction reuse it, so one ECDSA recovery covers the whole
  // transaction lifecycle.
  ONOFF_RETURN_NOT_OK(tx.Sender().status());
  if (tx.gas_limit > config_.block_gas_limit) {
    return Status::InvalidArgument("gas limit exceeds block gas limit");
  }
  if (tx.gas_limit < tx.IntrinsicGas()) {
    return Status::InvalidArgument("gas limit below intrinsic gas");
  }
  if (config_.deploy_lint != DeployLint::kOff && tx.IsContractCreation() &&
      !tx.data.empty()) {
    analysis::AnalysisOptions options;
    options.block_gas_limit = config_.block_gas_limit;
    analysis::DeploymentReport report =
        analysis::AnalyzeDeployment(tx.data, options);
    if (report.HasErrors()) {
      static obs::Counter* findings =
          obs::GetCounterOrNull("chain.deploy_lint_findings");
      if (findings != nullptr) findings->Inc();
      ONOFF_LOG(log::Level::kWarn, "chain",
                "deploy lint found issues in init code of tx %s",
                ToHex0x(BytesView(tx.Hash().data(), 8)).c_str());
      if (config_.deploy_lint == DeployLint::kEnforce) {
        std::string first;
        for (const analysis::Diagnostic& d : report.AllDiagnostics()) {
          if (analysis::IsError(d.code)) {
            first = analysis::FormatDiagnostic(d);
            break;
          }
        }
        ONOFF_LOG(log::Level::kError, "chain", "deploy rejected: %s",
                  first.c_str());
        return Status::AnalysisRejected("deploy lint: " + first);
      }
    }
  }
  // Rejoinable trace context: the Transaction wire format carries no trace
  // ids, so remember which trace submitted this hash (no-op when the
  // submitter has no ambient context or tracing is off).
  if (trace::Tracer* tracer = trace::Tracer::Global()) {
    tracer->AnnotateTx(tx.Hash(), trace::CurrentContext());
  }
  ONOFF_RETURN_NOT_OK(pool_.Add(tx));
  return tx.Hash();
}

Result<Hash32> Blockchain::SendTransaction(const secp256k1::PrivateKey& key,
                                           std::optional<Address> to,
                                           const U256& value, Bytes data,
                                           uint64_t gas_limit,
                                           const U256& gas_price) {
  Transaction tx;
  tx.nonce = state_.GetNonce(key.EthAddress());
  // Account for transactions already pending from this sender.
  // (Simple approach: scan is unnecessary since tests mine eagerly.)
  tx.gas_price = gas_price;
  tx.gas_limit = gas_limit;
  tx.to = to;
  tx.value = value;
  tx.data = std::move(data);
  tx.Sign(key);
  return SubmitTransaction(tx);
}

Result<Receipt> Blockchain::Execute(const secp256k1::PrivateKey& key,
                                    std::optional<Address> to,
                                    const U256& value, Bytes data,
                                    uint64_t gas_limit, const U256& gas_price) {
  ONOFF_ASSIGN_OR_RETURN(
      Hash32 hash,
      SendTransaction(key, to, value, std::move(data), gas_limit, gas_price));
  MineBlock();
  return GetReceipt(hash);
}

evm::BlockContext Blockchain::MakeBlockContext(uint64_t number,
                                               uint64_t timestamp) const {
  evm::BlockContext ctx;
  ctx.number = number;
  ctx.timestamp = timestamp;
  ctx.coinbase = config_.coinbase;
  ctx.gas_limit = config_.block_gas_limit;
  ctx.block_hash = [this](uint64_t n) -> Hash32 {
    if (n < blocks_.size()) return blocks_[n].Hash();
    return Hash32{};
  };
  return ctx;
}

Receipt Blockchain::ExecuteTransaction(state::StateView& state,
                                       const Transaction& tx,
                                       uint64_t block_number, bool quiet) {
  static obs::Histogram* apply_us = obs::GetHistogramOrNull(
      "chain.apply_tx_us", obs::DefaultTimeBucketsUs());
  obs::ScopedTimer apply_span(quiet ? nullptr : apply_us);
  Receipt receipt;
  receipt.tx_hash = tx.Hash();
  receipt.block_number = block_number;

  trace::Tracer* tracer = quiet ? nullptr : trace::Tracer::Global();
  trace::TraceContext tx_ctx;
  if (tracer != nullptr) tx_ctx = tracer->ContextForTx(receipt.tx_hash);
  trace::ScopedSpan tx_span(
      tracer, tx_ctx, "tx.apply", "chain",
      {{"block", std::to_string(block_number)},
       {"tx", ToHex0x(BytesView(receipt.tx_hash.data(), 32))}});

  auto fail = [&](const std::string& reason) {
    receipt.success = false;
    receipt.output = BytesOf(reason);
    return receipt;
  };

  auto sender_result = tx.Sender();
  if (!sender_result.ok()) return fail("invalid signature");
  Address sender = *sender_result;

  if (tx.nonce != state.GetNonce(sender)) return fail("nonce mismatch");

  uint64_t intrinsic = tx.IntrinsicGas();
  if (tx.gas_limit < intrinsic) return fail("intrinsic gas exceeds limit");

  U256 upfront = tx.gas_price * U256(tx.gas_limit) + tx.value;
  if (state.GetBalance(sender) < upfront) {
    return fail("insufficient balance for gas * price + value");
  }

  // Charge the full gas allowance upfront; unused gas is refunded below.
  Status st = state.SubBalance(sender, tx.gas_price * U256(tx.gas_limit));
  assert(st.ok());
  (void)st;

  evm::Evm evm(&state, MakeBlockContext(block_number, now_),
               evm::TxContext{sender, tx.gas_price});
  if (evm::DispatchMode dm; !config_.evm_dispatch.empty() &&
                            evm::ParseDispatchMode(config_.evm_dispatch, &dm)) {
    evm.set_dispatch_mode(dm);
  }

  // Mirror the EVM call-frame tree into the trace when this tx is traced;
  // a configured step tracer rides along as the inner hook (or alone, when
  // the transaction itself is not sampled into a trace).
  trace::FrameSpanHook frame_hook(tracer, tx_span.context(), step_tracer_);
  if (tx_span.context().valid()) {
    evm.set_trace_hook(&frame_hook);
  } else if (!quiet && step_tracer_ != nullptr) {
    evm.set_trace_hook(step_tracer_);
  }

  uint64_t exec_gas = tx.gas_limit - intrinsic;
  evm::ExecResult result;
  if (tx.IsContractCreation()) {
    result = evm.Create(sender, tx.value, tx.data, exec_gas);
    receipt.contract_address = result.created;
  } else {
    state.IncrementNonce(sender);
    evm::CallMessage msg;
    msg.caller = sender;
    msg.to = *tx.to;
    msg.value = tx.value;
    msg.data = tx.data;
    msg.gas = exec_gas;
    result = evm.Call(msg);
  }

  uint64_t gas_used = tx.gas_limit - result.gas_left;
  if (result.ok()) {
    // Refunds are capped at half the gas used (Yellow Paper).
    uint64_t refund = std::min(result.refund, gas_used / 2);
    gas_used -= refund;
  }

  // Return unused gas; pay the miner. The fee goes through CreditFee so a
  // speculative view records it as a commutative delta instead of a
  // read-modify-write of the coinbase balance (which would serialize every
  // block — all transactions pay the same miner).
  state.AddBalance(sender, tx.gas_price * U256(tx.gas_limit - gas_used));
  state.CreditFee(config_.coinbase, tx.gas_price * U256(gas_used));

  // Bounds-check mode: a successful execution must stay within the static
  // analyzer's worst-case bound (exceptional halts consume the whole
  // allowance by construction, so only successes are meaningful).
  if (!quiet && bounds_checker_ != nullptr && result.ok()) {
    uint64_t evm_gas = exec_gas - result.gas_left;
    std::optional<trace::GasBoundsChecker::Violation> violation =
        tx.IsContractCreation()
            ? bounds_checker_->CheckCreate(tx.data, evm_gas)
            : bounds_checker_->CheckCall(state.GetCode(*tx.to), tx.data,
                                         evm_gas);
    if (violation.has_value()) {
      ONOFF_LOG(log::Level::kWarn, "chain", "%s",
                violation->ToString().c_str());
      if (tracer != nullptr) {
        tracer->Event(tx_ctx, "trace.bounds_violation", "chain",
                      {{"detail", violation->ToString()}});
      }
    }
  }

  receipt.success = result.ok();
  receipt.gas_used = gas_used;
  receipt.logs = std::move(result.logs);
  receipt.output = std::move(result.output);
  tx_span.AddArg("gas_used", std::to_string(gas_used));
  tx_span.AddArg("success", receipt.success ? "true" : "false");
  if (!quiet && !receipt.success) {
    static obs::Counter* failed = obs::GetCounterOrNull("chain.txs_failed");
    if (failed != nullptr) failed->Inc();
    ONOFF_LOG(log::Level::kDebug, "chain", "tx %s failed: %s",
              ToHex0x(BytesView(receipt.tx_hash.data(), 8)).c_str(),
              std::string(receipt.output.begin(), receipt.output.end())
                  .c_str());
  }
  return receipt;
}

const Block& Blockchain::MineBlock() {
  static obs::Histogram* mine_us = obs::GetHistogramOrNull(
      "chain.mine_block_us", obs::DefaultTimeBucketsUs());
  obs::ScopedTimer mine_span(mine_us);

  uint64_t number = blocks_.back().header.number + 1;

  Block block;
  block.header.parent_hash = blocks_.back().Hash();
  block.header.number = number;
  block.header.timestamp = now_;
  block.header.coinbase = config_.coinbase;
  block.header.gas_limit = config_.block_gas_limit;

  std::vector<Bytes> tx_payloads;
  std::vector<Bytes> receipt_payloads;
  uint64_t cumulative_gas = 0;

  // Pack against the block gas limit by cumulative transaction gas limit
  // (the worst case miners must be able to execute); transactions that no
  // longer fit stay pending for the next block.
  size_t pending_before = pool_.size();
  std::vector<Transaction> txs =
      pool_.Take(config_.max_txs_per_block, config_.block_gas_limit);
  trace::Tracer* tracer = trace::Tracer::Global();
  // Pre-execution capture: invariants snapshot the pre-block facts (balance
  // sums, per-sender nonces) the post-commit checks compare against.
  if (auditor_ != nullptr) auditor_->OnBlockStart(txs, state_);

  // The optimistic path needs at least two transactions to overlap and is
  // mutually exclusive with per-step instrumentation (a step tracer or
  // bounds checker observes execution order, which speculation scrambles).
  bool parallel = config_.exec_mode == ExecMode::kParallel &&
                  txs.size() >= 2 && step_tracer_ == nullptr &&
                  bounds_checker_ == nullptr;
  std::vector<Receipt> block_receipts;
  if (parallel) {
    block_receipts = ExecuteBlockParallel(txs, number);
  } else {
    block_receipts.reserve(txs.size());
    for (const Transaction& tx : txs) {
      block_receipts.push_back(
          ExecuteTransaction(state_, tx, number, /*quiet=*/false));
      state_.ClearJournal();
    }
  }

  for (size_t i = 0; i < txs.size(); ++i) {
    const Transaction& tx = txs[i];
    Receipt& receipt = block_receipts[i];
    cumulative_gas += receipt.gas_used;
    receipt.cumulative_gas_used = cumulative_gas;
    total_gas_used_ += receipt.gas_used;
    tx_payloads.push_back(tx.Encode());
    receipt_payloads.push_back(receipt.Encode());
    receipts_[HashKey(receipt.tx_hash)] = receipt;
    block.transactions.push_back(tx);
    if (tracer != nullptr) {
      tracer->Event(tracer->ContextForTx(receipt.tx_hash), "block.include",
                    "chain",
                    {{"block", std::to_string(number)},
                     {"gas_used", std::to_string(receipt.gas_used)}});
    }
  }

  block.header.gas_used = cumulative_gas;
  // The one per-block root computation: the incremental store folds in
  // exactly the accounts/slots this block touched. The equivalence check
  // and the persistence hook below both reuse this value.
  block.header.state_root = state_.StateRoot();
  block.header.tx_root = IndexedRoot(tx_payloads);
  block.header.receipt_root = IndexedRoot(receipt_payloads);

  if (pending_replay_root_.has_value()) {
    if (*pending_replay_root_ != block.header.state_root) {
      ONOFF_LOG(log::Level::kError, "chain",
                "parallel state root diverged from serial in block %llu",
                static_cast<unsigned long long>(number));
      obs::ViolationReport report;
      report.invariant = "receipt_root";
      report.message = "parallel state root diverged from serial replay";
      report.block_height = number;
      report.trace_id = trace::CurrentContext().trace_id;
      report.values = {
          {"serial_root",
           ToHex0x(BytesView(pending_replay_root_->data(), 32))},
          {"parallel_root",
           ToHex0x(BytesView(block.header.state_root.data(), 32))}};
      // Capture evidence before dying: through the auditor sink when one is
      // configured (it logs, counts and dumps), else straight to the
      // recorder.
      if (auditor_ != nullptr) {
        auditor_->sink().Report(std::move(report));
      } else if (obs::FlightRecorder* rec = obs::FlightRecorder::Global()) {
        obs::Json violation = report.ToJson();
        rec->DumpOnIncident("equivalence-abort", &violation);
      }
      std::abort();
    }
    pending_replay_root_.reset();
  }

  if (auditor_ != nullptr) {
    auditor_->OnBlockCommit(block, block_receipts, state_);
  }

  if (node_store_ != nullptr) {
    Status st = state_.PersistCommitted(*node_store_, number);
    if (!st.ok()) {
      ONOFF_LOG(log::Level::kWarn, "chain",
                "state persist failed at block %llu: %s",
                static_cast<unsigned long long>(number), st.message().c_str());
    } else if (config_.state_history_blocks > 0 &&
               number >= config_.state_history_blocks) {
      node_store_->PruneBelow(number - config_.state_history_blocks + 1);
    }
    // Make the block durable now: a crash later (including the divergence
    // aborts above) must not tear this block out of the log.
    Status flushed = node_store_->Flush();
    if (!flushed.ok()) {
      ONOFF_LOG(log::Level::kWarn, "chain",
                "state log flush failed at block %llu: %s",
                static_cast<unsigned long long>(number),
                flushed.message().c_str());
    }
  }

  blocks_.push_back(std::move(block));
  now_ += config_.block_interval_seconds;

  if (obs::FlightRecorder::Global() != nullptr) {
    obs::FlightRecord(
        obs::FlightKind::kBlockCommit, trace::CurrentContext().trace_id,
        number, cumulative_gas,
        ToHex0x(BytesView(blocks_.back().header.state_root.data(), 8)));
  }
  if (timeseries_ != nullptr) timeseries_->Tick();

  static obs::Counter* blocks_mined = obs::GetCounterOrNull(
      "chain.blocks_mined");
  static obs::Counter* txs_mined = obs::GetCounterOrNull("chain.txs_mined");
  static obs::Counter* txs_deferred = obs::GetCounterOrNull(
      "chain.txs_deferred");
  static obs::Gauge* pool_depth = obs::GetGaugeOrNull("chain.pool_depth");
  static obs::Histogram* block_gas = obs::GetHistogramOrNull(
      "chain.block_gas", obs::DefaultGasBuckets());
  if (blocks_mined != nullptr) blocks_mined->Inc();
  if (txs_mined != nullptr) txs_mined->Inc(txs.size());
  if (txs_deferred != nullptr) txs_deferred->Inc(pending_before - txs.size());
  if (pool_depth != nullptr) {
    pool_depth->Set(static_cast<int64_t>(pool_.size()));
  }
  if (block_gas != nullptr) {
    block_gas->Observe(static_cast<double>(cumulative_gas));
  }
  ONOFF_LOG(log::Level::kDebug, "chain",
            "mined block %llu: %zu txs, %llu gas, %zu pending",
            static_cast<unsigned long long>(number), txs.size(),
            static_cast<unsigned long long>(cumulative_gas), pool_.size());
  return blocks_.back();
}

TxAccessHint Blockchain::BuildAccessHint(const Transaction& tx) const {
  TxAccessHint hint;
  auto sender_result = tx.Sender();
  if (!sender_result.ok()) {
    hint.known = true;  // invalid signature: rejected before any state access
    return hint;
  }
  // Creations execute init code against a fresh address; not worth hinting.
  if (tx.IsContractCreation()) return hint;

  const Address& sender = *sender_result;
  const Address& to = *tx.to;
  auto& reads = hint.reads.keys;
  auto& writes = hint.writes.keys;
  // Intrinsic bookkeeping every call transaction may touch: sender nonce
  // and balance (validation, gas charge, refund), callee existence/balance
  // (value transfer, which creates absent accounts) and code, miner fee.
  // Validation failures touch a subset of these, so the hint stays sound.
  reads.insert(state::access_key::Existence(sender));
  reads.insert(state::access_key::Balance(sender));
  reads.insert(state::access_key::Nonce(sender));
  writes.insert(state::access_key::Existence(sender));
  writes.insert(state::access_key::Balance(sender));
  writes.insert(state::access_key::Nonce(sender));
  reads.insert(state::access_key::Existence(to));
  reads.insert(state::access_key::Code(to));
  // The callee's balance (and existence, via account creation) is touched
  // only by an actual value transfer: zero-value calls skip Transfer, and a
  // contract reading its own balance uses BALANCE, which marks the summary
  // external-reading and thus unschedulable. Gating these keys on the value
  // is what lets zero-value calls to disjoint selectors of one shared
  // contract co-schedule.
  if (!tx.value.IsZero()) {
    reads.insert(state::access_key::Balance(to));
    writes.insert(state::access_key::Existence(to));
    writes.insert(state::access_key::Balance(to));
  }
  writes.insert(state::access_key::Balance(config_.coinbase));

  const Bytes& code = state_.GetCode(to);
  if (code.empty()) {
    // Plain transfer or precompile call: intrinsic fields only.
    hint.known = true;
    return hint;
  }

  std::shared_ptr<const analysis::ProgramAccess> access =
      analysis::AccessSummaryCache::Global().Get(state_.GetCodeHash(to), code);
  const analysis::AccessSummary* summary = &access->program;
  if (tx.data.size() >= 4) {
    uint32_t selector = (static_cast<uint32_t>(tx.data[0]) << 24) |
                        (static_cast<uint32_t>(tx.data[1]) << 16) |
                        (static_cast<uint32_t>(tx.data[2]) << 8) |
                        static_cast<uint32_t>(tx.data[3]);
    if (const analysis::AccessSummary* sel = access->ForSelector(selector)) {
      summary = sel;
    }
  }
  if (!summary->StaticallySchedulable()) return hint;  // ⊤: optimistic path

  // SSTORE loads the slot before writing (and reverts re-read it), so every
  // hinted write slot is a hinted read slot too.
  for (const U256& slot : summary->reads.slots) {
    reads.insert(state::access_key::Slot(to, slot));
  }
  for (const U256& slot : summary->writes.slots) {
    reads.insert(state::access_key::Slot(to, slot));
    writes.insert(state::access_key::Slot(to, slot));
  }
  hint.known = true;
  return hint;
}

std::vector<Receipt> Blockchain::ExecuteBlockParallel(
    const std::vector<Transaction>& txs, uint64_t block_number) {
  // The equivalence cross-check replays from the pre-block state.
  std::optional<state::WorldState> pre_state;
  if (config_.assert_parallel_equivalence) pre_state = state_.Clone();

  // Static schedule: hints must be built against the pre-block state (code
  // is looked up before the block's own transactions run), which is exactly
  // what `state_` is at this point.
  std::vector<TxAccessHint> hints;
  if (config_.exec_static_scheduling || config_.check_static_containment) {
    hints.reserve(txs.size());
    for (const Transaction& tx : txs) hints.push_back(BuildAccessHint(tx));
  }

  ParallelExecutor executor(exec_pool_.get());
  std::vector<Receipt> receipts = executor.ExecuteBlock(
      state_, txs,
      [this, block_number](state::StateView& view, const Transaction& tx) {
        return ExecuteTransaction(view, tx, block_number, /*quiet=*/true);
      },
      &parallel_stats_, hints.empty() ? nullptr : &hints,
      config_.check_static_containment);

  // Quiet executions skip the per-tx failure telemetry; settle it here for
  // the receipts that actually made the block.
  static obs::Counter* failed = obs::GetCounterOrNull("chain.txs_failed");
  for (const Receipt& receipt : receipts) {
    if (failed != nullptr && !receipt.success) failed->Inc();
  }

  if (pre_state.has_value()) {
    state::WorldState replay = std::move(*pre_state);
    for (size_t i = 0; i < txs.size(); ++i) {
      Receipt serial =
          ExecuteTransaction(replay, txs[i], block_number, /*quiet=*/true);
      replay.ClearJournal();
      if (serial.Encode() != receipts[i].Encode()) {
        ONOFF_LOG(log::Level::kError, "chain",
                  "parallel execution diverged from serial at tx %zu of "
                  "block %llu",
                  i, static_cast<unsigned long long>(block_number));
        obs::ViolationReport report;
        report.invariant = "receipt_root";
        report.message = "parallel receipt diverged from serial replay";
        report.block_height = block_number;
        report.tx_hash = ToHex0x(BytesView(receipts[i].tx_hash.data(), 32));
        report.trace_id = trace::CurrentContext().trace_id;
        report.values = {{"tx_index", std::to_string(i)}};
        if (auditor_ != nullptr) {
          auditor_->sink().Report(std::move(report));
        } else if (obs::FlightRecorder* rec = obs::FlightRecorder::Global()) {
          obs::Json violation = report.ToJson();
          rec->DumpOnIncident("equivalence-abort", &violation);
        }
        std::abort();
      }
    }
    // Defer the root comparison: MineBlock computes the live state's root
    // once into the block header and checks this against it, instead of
    // computing state_.StateRoot() a second time here.
    pending_replay_root_ = replay.StateRoot();
  }
  return receipts;
}

void Blockchain::MineAllPending() {
  while (!pool_.empty()) {
    size_t before = pool_.size();
    MineBlock();
    // An unpackable pool (only possible when transactions bypass
    // SubmitTransaction's gas-limit validation) must not spin forever.
    if (pool_.size() == before) break;
  }
}

std::vector<evm::LogEntry> Blockchain::GetLogs(const LogQuery& query) const {
  std::vector<evm::LogEntry> out;
  for (const Block& block : blocks_) {
    if (block.header.number < query.from_block ||
        block.header.number > query.to_block) {
      continue;
    }
    for (const Transaction& tx : block.transactions) {
      auto it = receipts_.find(HashKey(tx.Hash()));
      if (it == receipts_.end()) continue;
      for (const evm::LogEntry& log : it->second.logs) {
        if (query.address.has_value() && log.address != *query.address) {
          continue;
        }
        if (query.topic0.has_value() &&
            (log.topics.empty() || log.topics[0] != *query.topic0)) {
          continue;
        }
        out.push_back(log);
      }
    }
  }
  return out;
}

Result<Receipt> Blockchain::GetReceipt(const Hash32& tx_hash) const {
  auto it = receipts_.find(HashKey(tx_hash));
  if (it == receipts_.end()) {
    return Status::NotFound("no receipt for transaction");
  }
  return it->second;
}

evm::ExecResult Blockchain::CallReadOnly(const Address& from,
                                         const Address& to, Bytes data,
                                         uint64_t gas) {
  auto snapshot = state_.TakeSnapshot();
  evm::Evm evm(&state_, MakeBlockContext(blocks_.back().header.number + 1, now_),
               evm::TxContext{from, U256(0)});
  if (evm::DispatchMode dm; !config_.evm_dispatch.empty() &&
                            evm::ParseDispatchMode(config_.evm_dispatch, &dm)) {
    evm.set_dispatch_mode(dm);
  }
  evm::CallMessage msg;
  msg.caller = from;
  msg.to = to;
  msg.data = std::move(data);
  msg.gas = gas;
  evm::ExecResult res = evm.Call(msg);
  state_.RevertToSnapshot(snapshot);
  return res;
}

}  // namespace onoff::chain
