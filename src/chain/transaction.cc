#include "chain/transaction.h"

#include "evm/gas.h"
#include "obs/metrics.h"
#include "rlp/rlp.h"

namespace onoff::chain {

namespace {

std::vector<rlp::Item> UnsignedFields(const Transaction& tx) {
  std::vector<rlp::Item> fields;
  fields.push_back(rlp::Item::Scalar(tx.nonce));
  fields.push_back(rlp::Item::Scalar(tx.gas_price));
  fields.push_back(rlp::Item::Scalar(tx.gas_limit));
  fields.push_back(tx.to.has_value() ? rlp::Item::String(tx.to->view())
                                     : rlp::Item::String(Bytes{}));
  fields.push_back(rlp::Item::Scalar(tx.value));
  fields.push_back(rlp::Item::String(tx.data));
  return fields;
}

}  // namespace

Hash32 Transaction::SigningHash() const {
  return Keccak256(rlp::Encode(rlp::Item::List(UnsignedFields(*this))));
}

Bytes Transaction::Encode() const {
  std::vector<rlp::Item> fields = UnsignedFields(*this);
  fields.push_back(rlp::Item::Scalar(U256(signature.v)));
  fields.push_back(rlp::Item::Scalar(signature.r));
  fields.push_back(rlp::Item::Scalar(signature.s));
  return rlp::Encode(rlp::Item::List(std::move(fields)));
}

Hash32 Transaction::Hash() const { return Keccak256(Encode()); }

Result<Transaction> Transaction::Decode(BytesView rlp_data) {
  ONOFF_ASSIGN_OR_RETURN(rlp::Item item, rlp::Decode(rlp_data));
  if (!item.IsList() || item.list().size() != 9) {
    return Status::InvalidArgument("transaction RLP must be a 9-item list");
  }
  const auto& f = item.list();
  Transaction tx;
  ONOFF_ASSIGN_OR_RETURN(U256 nonce, f[0].AsScalar());
  if (!nonce.FitsUint64()) return Status::OutOfRange("nonce too large");
  tx.nonce = nonce.low64();
  ONOFF_ASSIGN_OR_RETURN(tx.gas_price, f[1].AsScalar());
  ONOFF_ASSIGN_OR_RETURN(U256 gas_limit, f[2].AsScalar());
  if (!gas_limit.FitsUint64()) return Status::OutOfRange("gas limit too large");
  tx.gas_limit = gas_limit.low64();
  if (!f[3].IsString()) return Status::InvalidArgument("bad to-field");
  if (f[3].string().empty()) {
    tx.to = std::nullopt;
  } else {
    ONOFF_ASSIGN_OR_RETURN(Address to, Address::FromBytes(f[3].string()));
    tx.to = to;
  }
  ONOFF_ASSIGN_OR_RETURN(tx.value, f[4].AsScalar());
  if (!f[5].IsString()) return Status::InvalidArgument("bad data field");
  tx.data = f[5].string();
  ONOFF_ASSIGN_OR_RETURN(U256 v, f[6].AsScalar());
  if (!v.FitsUint64() || v.low64() > 255) {
    return Status::InvalidArgument("bad signature v");
  }
  tx.signature.v = static_cast<uint8_t>(v.low64());
  ONOFF_ASSIGN_OR_RETURN(tx.signature.r, f[7].AsScalar());
  ONOFF_ASSIGN_OR_RETURN(tx.signature.s, f[8].AsScalar());
  return tx;
}

void Transaction::Sign(const secp256k1::PrivateKey& key) {
  auto sig = secp256k1::Sign(SigningHash(), key);
  // Sign only fails on out-of-range keys, which PrivateKey precludes.
  signature = *sig;
}

Result<Address> Transaction::Sender() const {
  static obs::Counter* hits = obs::GetCounterOrNull("chain.sender_cache_hits");
  static obs::Counter* misses =
      obs::GetCounterOrNull("chain.sender_cache_misses");
  // The signing hash is the invalidation key: any mutation of a signed field
  // changes it, so a stale memo can never be returned. Hashing is orders of
  // magnitude cheaper than the ECDSA recovery it short-circuits.
  Hash32 digest = SigningHash();
  if (sender_cached_ && digest == sender_digest_ && signature == sender_sig_) {
    if (hits != nullptr) hits->Inc();
    return sender_;
  }
  if (misses != nullptr) misses->Inc();
  ONOFF_ASSIGN_OR_RETURN(Address sender,
                         secp256k1::RecoverAddress(digest, signature.v,
                                                   signature.r, signature.s));
  sender_cached_ = true;
  sender_digest_ = digest;
  sender_sig_ = signature;
  sender_ = sender;
  return sender;
}

uint64_t Transaction::IntrinsicGas() const {
  uint64_t total = evm::gas::kTx;
  if (IsContractCreation()) total += evm::gas::kTxCreate;
  for (uint8_t b : data) {
    total += b == 0 ? evm::gas::kTxDataZero : evm::gas::kTxDataNonZero;
  }
  return total;
}

}  // namespace onoff::chain
