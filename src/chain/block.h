// Blocks, headers and transaction receipts for the simulated chain.

#ifndef ONOFFCHAIN_CHAIN_BLOCK_H_
#define ONOFFCHAIN_CHAIN_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chain/transaction.h"
#include "crypto/keccak.h"
#include "evm/evm.h"
#include "support/address.h"
#include "support/bytes.h"

namespace onoff::chain {

struct BlockHeader {
  Hash32 parent_hash{};
  uint64_t number = 0;
  uint64_t timestamp = 0;
  Address coinbase;
  Hash32 state_root{};
  Hash32 tx_root{};       // trie root over RLP-indexed transactions
  Hash32 receipt_root{};  // trie root over RLP-indexed receipts
  uint64_t gas_used = 0;
  uint64_t gas_limit = 0;

  // keccak of the RLP-encoded header — the block hash.
  Hash32 Hash() const;
  Bytes Encode() const;
};

// The outcome of one included transaction.
struct Receipt {
  Hash32 tx_hash{};
  uint64_t block_number = 0;
  bool success = false;
  // Gas consumed by this transaction alone, and cumulative within the block.
  uint64_t gas_used = 0;
  uint64_t cumulative_gas_used = 0;
  std::vector<evm::LogEntry> logs;
  // Set for contract-creation transactions.
  Address contract_address;
  // REVERT reason bytes or return data, for debugging/tests.
  Bytes output;

  Bytes Encode() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  Hash32 Hash() const { return header.Hash(); }
};

// Human-readable multi-line receipt summary (status, gas, contract address,
// every LOG0–LOG4 entry with topics and data) — the CLI's receipt output.
std::string DescribeReceipt(const Receipt& receipt);

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_BLOCK_H_
