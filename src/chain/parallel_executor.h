// Optimistic parallel block execution (single-wave Block-STM flavor).
//
// Every transaction of a block is speculated concurrently on the shared
// thread pool, each against its own copy-on-write overlay of the pre-block
// WorldState (state/speculative_state.h) with per-field read/write-set
// recording. Afterwards the overlays are committed serially in block order:
// a speculation whose read set is disjoint from everything committed before
// it is sound — executing it against the pre-block state and against the
// current state is indistinguishable — so its overlay and receipt are
// committed verbatim. A conflicting speculation is discarded and the
// transaction re-executed on a fresh overlay over the current committed
// state (capturing a write set, so later conflict checks see its effects
// too), which makes the result byte-identical to serial execution: same
// state root, same receipts, in the same block order.

#ifndef ONOFFCHAIN_CHAIN_PARALLEL_EXECUTOR_H_
#define ONOFFCHAIN_CHAIN_PARALLEL_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "chain/block.h"
#include "chain/transaction.h"
#include "state/speculative_state.h"
#include "state/world_state.h"
#include "support/thread_pool.h"

namespace onoff::state {
class StateView;
}  // namespace onoff::state

namespace onoff::chain {

// A static over-approximation of one transaction's access footprint,
// derived from the analyzer's per-selector access summaries (DESIGN §12)
// in the same key encoding the dynamic recorder uses. `known == false`
// (the ⊤ hint) means the analysis could not bound the footprint — the
// transaction takes the plain optimistic path.
struct TxAccessHint {
  bool known = false;
  state::AccessSet reads;
  state::AccessSet writes;
};

struct ParallelExecStats {
  size_t speculated = 0;   // speculative executions run in the wave
  size_t committed = 0;    // speculations committed verbatim
  size_t conflicts = 0;    // speculations discarded on read/write conflict
  size_t reexecuted = 0;   // serial re-executions (== conflicts)
  size_t static_clear = 0;     // commits proven conflict-free statically
  size_t hint_violations = 0;  // dynamic accesses escaping a known hint
};

class ParallelExecutor {
 public:
  // Executes one transaction against the given view and returns its
  // receipt. Must be thread-safe apart from the view (it is called
  // concurrently during the wave, each call with a distinct view) and must
  // route the miner-fee credit through StateView::CreditFee.
  using ExecFn =
      std::function<Receipt(state::StateView&, const Transaction&)>;

  // `pool` is not owned; nullptr uses ThreadPool::Shared().
  explicit ParallelExecutor(ThreadPool* pool = nullptr) : pool_(pool) {}

  // Runs the wave + ordered commit described above. On return `state` holds
  // the post-block state and the result holds one receipt per transaction,
  // in block order. Not reentrant; `state` must not be touched concurrently.
  //
  // `hints` (optional, one entry per transaction when present) carries the
  // static access footprints from the analyzer. Before the commit pass the
  // executor partitions the block: a transaction whose hinted reads are
  // disjoint from the hinted writes of every earlier transaction — with all
  // earlier hints known — is *statically clear* and commits verbatim without
  // consulting its dynamic read set. ⊤ hints (known == false) and everything
  // after them fall back to the dynamic conflict check, so results stay
  // byte-identical to serial execution either way.
  //
  // `check_containment` turns the dynamic recorder into a soundness oracle:
  // after each transaction finishes, its recorded accesses must be covered
  // by its hint (static ⊇ dynamic). A violation bumps
  // `stats->hint_violations`, and the executor stops trusting hints for the
  // remainder of the block (every later commit re-checks dynamically).
  std::vector<Receipt> ExecuteBlock(state::WorldState& state,
                                    const std::vector<Transaction>& txs,
                                    const ExecFn& execute,
                                    ParallelExecStats* stats = nullptr,
                                    const std::vector<TxAccessHint>* hints = nullptr,
                                    bool check_containment = false);

 private:
  ThreadPool* pool_;
};

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_PARALLEL_EXECUTOR_H_
