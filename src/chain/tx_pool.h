// A minimal transaction pool: pending transactions ordered per-sender by
// nonce, popped for block inclusion in submission order.

#ifndef ONOFFCHAIN_CHAIN_TX_POOL_H_
#define ONOFFCHAIN_CHAIN_TX_POOL_H_

#include <deque>
#include <unordered_set>
#include <vector>

#include "chain/transaction.h"
#include "support/status.h"

namespace onoff::chain {

class TxPool {
 public:
  // Rejects duplicate transaction hashes.
  Status Add(const Transaction& tx);

  // Removes and returns up to `max_count` transactions.
  std::vector<Transaction> Take(size_t max_count);

  size_t size() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }
  // True while the transaction is pending (not yet taken).
  bool Contains(const Hash32& tx_hash) const {
    return seen_.count(HashKey(tx_hash)) > 0;
  }

 private:
  static std::string HashKey(const Hash32& h) {
    return std::string(reinterpret_cast<const char*>(h.data()), h.size());
  }

  std::deque<Transaction> pending_;
  std::unordered_set<std::string> seen_;
};

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_TX_POOL_H_
