// The transaction pool: pending transactions ordered per-sender by nonce,
// popped for block inclusion under a block gas budget.
//
// Internally the pool is sharded by sender into lock-striped partitions so
// concurrent Add calls (gossip / simulation threads) only contend when they
// hit the same stripe, and Take drains stripes briefly instead of holding
// one big pool lock while it packs. A global arrival sequence number
// preserves the seed pool's ordering contract: submission order decides
// which *slots* a sender's transactions occupy in the take sequence (first
// come, first served across senders), but within one sender's slots the
// transactions are handed out in ascending nonce order. A sender who
// submits nonces {2,0,1} therefore still gets them mined as 0,1,2 instead
// of burning gas on nonce-gap failures.
//
// Packing semantics (see Take):
//  - A transaction whose gas limit no longer fits the remaining block
//    budget is *skipped* along with the rest of its sender's sequence
//    (deferring a lower nonce must defer the higher ones), and packing
//    continues with other senders — no head-of-line blocking.
//  - A sender's transactions are only packed while their nonces are
//    contiguous from the sender's base nonce (the account nonce when a
//    provider is wired, else the sender's lowest pending nonce); gapped
//    entries are held in the pool until the gap fills instead of being
//    mined into certain nonce-mismatch failures.
//  - Entries whose nonce is already below the base nonce can never be
//    mined and are dropped.
//  - Hashes of recently taken (in-flight/mined) transactions are remembered
//    in a bounded window keyed off take batches (≈ mined blocks), and Add
//    rejects them, so a late gossip duplicate cannot be mined twice.

#ifndef ONOFFCHAIN_CHAIN_TX_POOL_H_
#define ONOFFCHAIN_CHAIN_TX_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "chain/transaction.h"
#include "support/status.h"

namespace onoff::chain {

struct TxPoolConfig {
  // Lock stripes; sized for a handful of producer threads. Must be > 0.
  size_t shard_count = 16;
  // How many Take batches (≈ mined blocks) of taken hashes each stripe
  // remembers for duplicate rejection before forgetting the oldest.
  size_t recent_take_batches = 128;
};

class TxPool {
 public:
  TxPool() : TxPool(TxPoolConfig{}) {}
  explicit TxPool(TxPoolConfig config);

  // Maps a sender to its current account nonce — the base the pool packs
  // contiguous nonce runs from. Wire-up time only (not thread-safe against
  // concurrent Add/Take); called under the pool's stripe locks, so it must
  // not call back into the pool.
  using BaseNonceFn = std::function<uint64_t(const Address&)>;
  void set_base_nonce_provider(BaseNonceFn fn) { base_nonce_ = std::move(fn); }

  // Rejects duplicates of pending transactions and of recently taken ones.
  Status Add(const Transaction& tx);

  // Removes and returns up to `max_count` transactions ordered per-sender
  // by nonce under the gas budget, per the packing semantics above.
  // Single-consumer: concurrent Take calls are not supported (Adds may run
  // concurrently; transactions added while Take packs simply miss this
  // batch).
  std::vector<Transaction> Take(size_t max_count,
                                uint64_t gas_budget = UINT64_MAX);

  size_t size() const {
    return pending_count_.load(std::memory_order_relaxed);
  }
  bool empty() const { return size() == 0; }
  // True while the transaction is pending (not yet taken).
  bool Contains(const Hash32& tx_hash) const;
  // True while the transaction's hash is inside the recently-taken window.
  bool RecentlyTaken(const Hash32& tx_hash) const;

 private:
  struct Entry {
    Transaction tx;
    // Sender recovered once at Add; entries with an unrecoverable sender
    // keep their submission slot untouched and pack by arrival order.
    bool has_sender = false;
    Address sender;
    uint64_t seq = 0;  // global arrival order
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<Entry> entries;  // ascending seq
    std::unordered_set<std::string> pending_hashes;
    std::unordered_set<std::string> recent_taken;
    std::deque<std::vector<std::string>> recent_batches;
  };

  static std::string HashKey(const Hash32& h) {
    return std::string(reinterpret_cast<const char*>(h.data()), h.size());
  }

  // Shard by sender so one sender's nonce sequence lives in one stripe and
  // a duplicate hash always lands on the stripe that knows about it.
  size_t ShardIndexFor(const Entry& entry) const;

  void UpdateDepthGauge() const;

  TxPoolConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<size_t> pending_count_{0};
  BaseNonceFn base_nonce_;
};

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_TX_POOL_H_
