// A minimal transaction pool: pending transactions ordered per-sender by
// nonce, popped for block inclusion under a block gas budget.
//
// Submission order decides which *slots* a sender's transactions occupy in
// the take sequence (first come, first served across senders), but within
// one sender's slots the transactions are handed out in ascending nonce
// order. A sender who submits nonces {2,0,1} therefore still gets them
// mined as 0,1,2 instead of burning gas on nonce-gap failures.

#ifndef ONOFFCHAIN_CHAIN_TX_POOL_H_
#define ONOFFCHAIN_CHAIN_TX_POOL_H_

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "chain/transaction.h"
#include "support/status.h"

namespace onoff::chain {

class TxPool {
 public:
  // Rejects duplicate transaction hashes.
  Status Add(const Transaction& tx);

  // Removes and returns up to `max_count` transactions ordered per-sender
  // by nonce. Packing stops at the first transaction whose gas limit no
  // longer fits in `gas_budget` (the block gas limit minus what has been
  // taken so far); the remainder stays pending for later blocks.
  std::vector<Transaction> Take(size_t max_count,
                                uint64_t gas_budget = UINT64_MAX);

  size_t size() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }
  // True while the transaction is pending (not yet taken).
  bool Contains(const Hash32& tx_hash) const {
    return seen_.count(HashKey(tx_hash)) > 0;
  }

 private:
  struct Entry {
    Transaction tx;
    // Sender recovered once at Add; entries with an unrecoverable sender
    // keep their submission slot untouched.
    bool has_sender = false;
    Address sender;
  };

  static std::string HashKey(const Hash32& h) {
    return std::string(reinterpret_cast<const char*>(h.data()), h.size());
  }

  void UpdateDepthGauge() const;

  std::deque<Entry> pending_;
  std::unordered_set<std::string> seen_;
};

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_TX_POOL_H_
