// The simulated blockchain node: transaction pool, PoA-style block
// production with a controllable clock, transaction application with full
// gas accounting, receipts and queries. This plays the role Kovan plays in
// the paper — a deterministic single-process "testnet".

#ifndef ONOFFCHAIN_CHAIN_BLOCKCHAIN_H_
#define ONOFFCHAIN_CHAIN_BLOCKCHAIN_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/chain_audit.h"
#include "chain/parallel_executor.h"
#include "chain/transaction.h"
#include "chain/tx_pool.h"
#include "evm/evm.h"
#include "obs/flight_recorder.h"
#include "obs/timeseries.h"
#include "state/world_state.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace onoff::trace {
class GasBoundsChecker;
}  // namespace onoff::trace

namespace onoff::chain {

// What the node does with static-analysis findings on submitted init code.
enum class DeployLint {
  kOff,      // no analysis at submission time
  kWarn,     // analyze, count findings in chain.deploy_lint_findings, accept
  kEnforce,  // reject creation transactions whose init code has errors
};

// How a block's transactions are executed during mining.
enum class ExecMode {
  kSerial,    // one by one on the world state (the reference semantics)
  kParallel,  // optimistic speculation wave + ordered commit; results are
              // byte-identical to kSerial (chain/parallel_executor.h)
};

struct ChainConfig {
  uint64_t block_gas_limit = 8'000'000;
  // Kovan produced blocks every ~4 seconds.
  uint64_t block_interval_seconds = 4;
  Address coinbase;
  uint64_t genesis_timestamp = 1'550'000'000;  // ~Feb 2019, the paper's era
  size_t max_txs_per_block = 200;
  // Deploy-time lint: kWarn observes without changing consensus behavior
  // (hand-written test programs may be deliberately odd), kEnforce turns
  // analyzer errors into submission failures.
  DeployLint deploy_lint = DeployLint::kWarn;
  ExecMode exec_mode = ExecMode::kSerial;
  // Worker threads for parallel execution; 0 = the shared pool sized to the
  // hardware.
  size_t exec_workers = 0;
  // Debug/CI cross-check: after every parallel block, replay its
  // transactions serially from a clone of the pre-block state and abort on
  // any state-root or receipt divergence.
  bool assert_parallel_equivalence = false;
  // Persistent authenticated state (storage/node_store.h): after every
  // mined block, append the block's new trie nodes to the node log and
  // retain its state root. Off by default (in-memory chains, tests).
  bool persist_state = false;
  // Node-log path; empty = in-memory node store (useful for testing the
  // persistence path without touching disk).
  std::string state_db_path;
  // How many recent block states stay provable; older roots are released
  // and their unreachable nodes pruned. This is the dispute/challenge
  // window from the paper: off-chain results can be contested as long as
  // the state they commit to is still retained. 0 = keep everything.
  uint64_t state_history_blocks = 64;
  // Interpreter dispatch loop: "switch", "threaded-nofuse" or "threaded"
  // (see evm::DispatchMode). Empty (or unparseable) = the process-wide
  // default. All modes execute identically; this exists for benchmarks and
  // differential testing.
  std::string evm_dispatch;
  // Parallel mining only: feed the executor static access hints from the
  // analyzer's per-selector summaries so statically-disjoint transactions
  // commit without dynamic conflict checks (chain/parallel_executor.h).
  // Purely a fast path — results are byte-identical either way.
  bool exec_static_scheduling = true;
  // Fuzz/CI oracle: assert every transaction's recorded accesses stay
  // inside its static hint (static ⊇ dynamic); violations are counted in
  // chain.parallel.hint_violations and disable hints for the block's rest.
  bool check_static_containment = false;
  // Runtime invariant auditing (chain/chain_audit.h): "" = off, "all" or a
  // comma-separated subset of {conservation, nonce, settlement,
  // receipt_root, timer}. When empty, the ONOFF_AUDIT environment variable
  // supplies the spec (and makes violations fail-fast) — how CI runs the
  // whole suite audited without touching every test.
  std::string audit_invariants;
  // Abort on the first violation (the CI posture). Explicit configs default
  // to reporting only; the ONOFF_AUDIT env path turns this on.
  bool audit_fatal = false;
  // > 0: own a flight recorder of this many ring slots and install it as
  // the process global for this chain's lifetime (obs/flight_recorder.h).
  // The auditor dumps its triage bundle through it on any violation.
  size_t flight_recorder_events = 0;
  // > 0: sample the global metrics registry into ring-buffered time series
  // at block commits, at most once per this many obs::Clock ms
  // (obs/timeseries.h). The series export is read via timeseries().
  uint64_t timeseries_interval_ms = 0;
};

class Blockchain {
 public:
  explicit Blockchain(ChainConfig config = ChainConfig());
  // Restores the previously installed global flight recorder when this
  // chain owns one.
  ~Blockchain();
  Blockchain(const Blockchain&) = delete;
  Blockchain& operator=(const Blockchain&) = delete;

  // ---- Genesis / test setup ----
  // Credits an account (genesis allocation / faucet).
  void FundAccount(const Address& addr, const U256& amount);

  // ---- Transactions ----
  // Validates and enqueues; returns the transaction hash.
  Result<Hash32> SubmitTransaction(const Transaction& tx);
  // Builds, signs, and submits a transaction from `key`.
  Result<Hash32> SendTransaction(const secp256k1::PrivateKey& key,
                                 std::optional<Address> to, const U256& value,
                                 Bytes data, uint64_t gas_limit,
                                 const U256& gas_price = U256(1));
  // SendTransaction + MineBlock + receipt lookup, the common test loop.
  Result<Receipt> Execute(const secp256k1::PrivateKey& key,
                          std::optional<Address> to, const U256& value,
                          Bytes data, uint64_t gas_limit,
                          const U256& gas_price = U256(1));

  // ---- Mining ----
  // Produces one block from pending transactions (possibly empty) and
  // advances the chain clock by the block interval.
  const Block& MineBlock();
  // Mines until the pool drains.
  void MineAllPending();

  // ---- Clock ----
  uint64_t Now() const { return now_; }
  void AdvanceTime(uint64_t seconds) { now_ += seconds; }
  // Advances the clock to at least `timestamp`.
  void AdvanceTimeTo(uint64_t timestamp) {
    if (timestamp > now_) now_ = timestamp;
  }

  // ---- Queries ----
  U256 GetBalance(const Address& addr) const {
    return state_.GetBalance(addr);
  }
  uint64_t GetNonce(const Address& addr) const {
    return state_.GetNonce(addr);
  }
  const Bytes& GetCode(const Address& addr) const {
    return state_.GetCode(addr);
  }
  U256 GetStorage(const Address& addr, const U256& key) const {
    return state_.GetStorage(addr, key);
  }
  Result<Receipt> GetReceipt(const Hash32& tx_hash) const;

  // Event query (eth_getLogs): all logs matching the optional address and
  // first-topic filters, in block/transaction order.
  struct LogQuery {
    std::optional<Address> address;
    std::optional<U256> topic0;
    uint64_t from_block = 0;
    uint64_t to_block = UINT64_MAX;
  };
  std::vector<evm::LogEntry> GetLogs(const LogQuery& query) const;
  const std::vector<Block>& blocks() const { return blocks_; }
  uint64_t Height() const { return blocks_.back().header.number; }
  size_t PendingCount() const { return pool_.size(); }
  const state::WorldState& state() const { return state_; }
  const ChainConfig& config() const { return config_; }
  // The persistent node store, or nullptr when persist_state is off.
  const storage::NodeStore* node_store() const { return node_store_.get(); }
  // The invariant auditor, or nullptr when auditing is off. The protocol
  // driver reports settlement boundaries here; tests read violations.
  ChainAuditor* auditor() { return auditor_.get(); }
  const ChainAuditor* auditor() const { return auditor_.get(); }
  // The block-driven metrics sampler, or nullptr when off.
  const obs::TimeseriesSampler* timeseries() const {
    return timeseries_.get();
  }
  // Test-only fault injection: direct, transaction-free state mutation —
  // exactly what the auditor exists to catch.
  state::WorldState& mutable_state_for_test() { return state_; }

  // Read-only execution against current state (eth_call): no state change,
  // no transaction.
  evm::ExecResult CallReadOnly(const Address& from, const Address& to,
                               Bytes data, uint64_t gas = 10'000'000);

  // Cumulative gas actually paid for by senders across all blocks — the
  // "miner work" metric used in the evaluation benches.
  uint64_t TotalGasUsed() const { return total_gas_used_; }

  // Cumulative parallel-execution statistics (zeros under ExecMode::kSerial).
  const ParallelExecStats& parallel_stats() const { return parallel_stats_; }

  // Bounds-check mode: when set, every successfully applied transaction's
  // EVM gas is checked against the static analyzer's bound (trace/bounds.h)
  // and violations are logged + recorded as trace events. Not owned.
  void set_bounds_checker(trace::GasBoundsChecker* checker) {
    bounds_checker_ = checker;
  }

  // Per-step EVM tracer (e.g. trace::StructLogTracer): invoked for every
  // executed opcode of every applied transaction, either directly or as the
  // inner hook of the span mirror when the transaction is traced. Not owned.
  void set_step_tracer(evm::TraceHook* hook) { step_tracer_ = hook; }

 private:
  // Applies one transaction against `state` (the world state, a serial
  // replay clone, or a speculative overlay). `quiet` suppresses per-tx
  // telemetry — spans, histograms, failure counters, bounds checks — for
  // speculative executions that may be discarded; the block-level wave
  // telemetry covers the parallel path instead.
  Receipt ExecuteTransaction(state::StateView& state, const Transaction& tx,
                             uint64_t block_number, bool quiet);
  // Parallel-path body of MineBlock; returns one receipt per transaction
  // and leaves state_ identical to what serial application would produce
  // (checked when config_.assert_parallel_equivalence is set).
  std::vector<Receipt> ExecuteBlockParallel(const std::vector<Transaction>& txs,
                                            uint64_t block_number);
  // Static access footprint of `tx` in the dynamic recorder's key encoding:
  // intrinsic sender/callee/coinbase bookkeeping plus the callee's analyzer
  // summary for the selected function. ⊤ (known == false) for contract
  // creations and callees whose summary is not statically schedulable.
  TxAccessHint BuildAccessHint(const Transaction& tx) const;
  evm::BlockContext MakeBlockContext(uint64_t number, uint64_t timestamp) const;

  ChainConfig config_;
  state::WorldState state_;
  std::vector<Block> blocks_;
  TxPool pool_;
  std::map<std::string, Receipt> receipts_;  // keyed by raw hash bytes
  uint64_t now_;
  uint64_t total_gas_used_ = 0;
  ParallelExecStats parallel_stats_;
  trace::GasBoundsChecker* bounds_checker_ = nullptr;
  evm::TraceHook* step_tracer_ = nullptr;
  // Dedicated workers when config_.exec_workers > 0 (else the shared pool).
  std::unique_ptr<ThreadPool> exec_pool_;
  // Set when config_.persist_state: block states are appended here and
  // pruned past the history window.
  std::unique_ptr<storage::NodeStore> node_store_;
  // Serial-replay root from the parallel equivalence check, compared
  // against the block's header root once MineBlock has computed it — so
  // the live state's root is computed exactly once per block.
  std::optional<Hash32> pending_replay_root_;
  // Set when auditing is configured (audit_invariants or $ONOFF_AUDIT).
  std::unique_ptr<ChainAuditor> auditor_;
  // Owned recorder installed as the process global for this chain's
  // lifetime (flight_recorder_events > 0, or auditing on with no recorder
  // installed yet — a violation should always capture evidence).
  std::unique_ptr<obs::FlightRecorder> flight_recorder_;
  obs::FlightRecorder* previous_recorder_ = nullptr;
  std::unique_ptr<obs::TimeseriesSampler> timeseries_;
};

}  // namespace onoff::chain

#endif  // ONOFFCHAIN_CHAIN_BLOCKCHAIN_H_
