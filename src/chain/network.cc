#include "chain/network.h"

#include "obs/metrics.h"

namespace onoff::chain {

Node::Node(std::string name, ChainConfig config, GenesisAlloc alloc)
    : name_(std::move(name)), alloc_(std::move(alloc)), chain_(config) {
  for (const auto& [addr, amount] : alloc_) {
    chain_.FundAccount(addr, amount);
  }
}

Status Node::AcceptBlock(const Block& block) {
  static obs::Histogram* accept_us = obs::GetHistogramOrNull(
      "net.accept_block_us", obs::DefaultTimeBucketsUs());
  static obs::Counter* accepted_count =
      obs::GetCounterOrNull("net.blocks_accepted");
  static obs::Counter* rejected_count =
      obs::GetCounterOrNull("net.blocks_rejected");
  obs::ScopedTimer accept_span(accept_us);
  auto reject = [&](Status st) {
    ++rejected_;
    if (rejected_count != nullptr) rejected_count->Inc();
    return st;
  };

  // Validate the whole prospective chain (history + candidate) as a pure
  // check, so a bad block can never corrupt local state.
  std::vector<Block> prospective = chain_.blocks();
  prospective.push_back(block);
  Status st = VerifyChain(prospective, alloc_, chain_.config());
  if (!st.ok()) return reject(std::move(st));
  // Apply: determinism guarantees the replay reproduces the same block.
  chain_.AdvanceTimeTo(block.header.timestamp);
  for (const Transaction& tx : block.transactions) {
    Status submit = chain_.SubmitTransaction(tx).status();
    if (!submit.ok()) {
      return reject(Status::Internal("verified block failed to apply: " +
                                     submit.message()));
    }
  }
  const Block& applied = chain_.MineBlock();
  if (applied.Hash() != block.Hash()) {
    return Status::Internal("replayed block diverged after verification");
  }
  if (accepted_count != nullptr) accepted_count->Inc();
  return Status::OK();
}

Status Node::SyncFrom(const std::vector<Block>& blocks) {
  for (size_t i = chain_.Height() + 1; i < blocks.size(); ++i) {
    ONOFF_RETURN_NOT_OK(AcceptBlock(blocks[i]));
  }
  return Status::OK();
}

size_t Network::BroadcastBlock(const Node* from, const Block& block) {
  size_t accepted = 0;
  for (Node* node : nodes_) {
    if (node == from) continue;
    if (node->AcceptBlock(block).ok()) ++accepted;
  }
  return accepted;
}

size_t Network::ProduceAndBroadcast(Node* producer) {
  const Block& block = producer->ProduceBlock();
  return BroadcastBlock(producer, block);
}

}  // namespace onoff::chain
