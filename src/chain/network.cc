#include "chain/network.h"

#include <memory>

#include "obs/metrics.h"

namespace onoff::chain {

Node::Node(std::string name, ChainConfig config, GenesisAlloc alloc)
    : name_(std::move(name)), alloc_(std::move(alloc)), chain_(config) {
  for (const auto& [addr, amount] : alloc_) {
    chain_.FundAccount(addr, amount);
  }
}

Status Node::AcceptBlock(const Block& block) {
  static obs::Histogram* accept_us = obs::GetHistogramOrNull(
      "net.accept_block_us", obs::DefaultTimeBucketsUs());
  static obs::Counter* accepted_count =
      obs::GetCounterOrNull("net.blocks_accepted");
  static obs::Counter* rejected_count =
      obs::GetCounterOrNull("net.blocks_rejected");
  obs::ScopedTimer accept_span(accept_us);
  auto reject = [&](Status st) {
    ++rejected_;
    if (rejected_count != nullptr) rejected_count->Inc();
    return st;
  };

  // Validate the whole prospective chain (history + candidate) as a pure
  // check, so a bad block can never corrupt local state.
  std::vector<Block> prospective = chain_.blocks();
  prospective.push_back(block);
  Status st = VerifyChain(prospective, alloc_, chain_.config());
  if (!st.ok()) return reject(std::move(st));
  // Apply: determinism guarantees the replay reproduces the same block.
  chain_.AdvanceTimeTo(block.header.timestamp);
  for (const Transaction& tx : block.transactions) {
    Status submit = chain_.SubmitTransaction(tx).status();
    if (!submit.ok()) {
      return reject(Status::Internal("verified block failed to apply: " +
                                     submit.message()));
    }
  }
  const Block& applied = chain_.MineBlock();
  if (applied.Hash() != block.Hash()) {
    // Unlike the pure-check failures above, the replay has already advanced
    // local state (clock moved, a divergent block appended) — the most
    // serious failure mode, so it must be counted and must surface where
    // this node actually ended up.
    return reject(Status::Internal(
        "replayed block diverged after verification; local state advanced "
        "to height " +
        std::to_string(chain_.Height()) + " head 0x" +
        ToHex(BytesView(applied.Hash().data(), applied.Hash().size()))));
  }
  if (accepted_count != nullptr) accepted_count->Inc();
  return Status::OK();
}

Status Node::SyncFrom(const std::vector<Block>& blocks) {
  for (size_t i = chain_.Height() + 1; i < blocks.size(); ++i) {
    ONOFF_RETURN_NOT_OK(AcceptBlock(blocks[i]));
  }
  return Status::OK();
}

size_t BlockWireSize(const Block& block) {
  size_t bytes = block.header.Encode().size();
  for (const Transaction& tx : block.transactions) {
    bytes += tx.Encode().size();
  }
  return bytes;
}

size_t Network::BroadcastBlock(const Node* from, const Block& block) {
  if (transport_ == nullptr) {
    size_t accepted = 0;
    for (Node* node : nodes_) {
      if (node == from) continue;
      if (node->AcceptBlock(block).ok()) ++accepted;
    }
    return accepted;
  }
  // One gossip message per peer; each delivery replays the block on the
  // receiving node whenever the transport says it arrives.
  auto accepted = std::make_shared<size_t>(0);
  const std::string origin = from != nullptr ? from->name() : "";
  const size_t wire_size = BlockWireSize(block);
  for (Node* node : nodes_) {
    if (node == from) continue;
    transport_->Deliver(origin, node->name(), wire_size,
                        [node, block, accepted] {
                          if (node->AcceptBlock(block).ok()) ++*accepted;
                        });
  }
  return *accepted;
}

size_t Network::ProduceAndBroadcast(Node* producer) {
  const Block& block = producer->ProduceBlock();
  return BroadcastBlock(producer, block);
}

Result<size_t> Network::CatchUp(Node* node, const Node& source) {
  static obs::Counter* catchups = obs::GetCounterOrNull("sim.sync_catchups");
  static obs::Counter* synced = obs::GetCounterOrNull("sim.sync_blocks");
  static obs::Histogram* span_us = obs::GetHistogramOrNull(
      "sim.sync_catchup_us", obs::DefaultTimeBucketsUs());
  obs::ScopedTimer span(span_us);
  uint64_t before = node->Height();
  ONOFF_RETURN_NOT_OK(node->SyncFrom(source.chain().blocks()));
  size_t applied = static_cast<size_t>(node->Height() - before);
  if (catchups != nullptr) catchups->Inc();
  if (synced != nullptr) synced->Inc(applied);
  return applied;
}

}  // namespace onoff::chain
