#include "chain/block.h"

#include "rlp/rlp.h"

namespace onoff::chain {

namespace {

rlp::Item HashItem(const Hash32& h) {
  return rlp::Item::String(BytesView(h.data(), h.size()));
}

}  // namespace

Bytes BlockHeader::Encode() const {
  std::vector<rlp::Item> fields;
  fields.push_back(HashItem(parent_hash));
  fields.push_back(rlp::Item::Scalar(number));
  fields.push_back(rlp::Item::Scalar(timestamp));
  fields.push_back(rlp::Item::String(coinbase.view()));
  fields.push_back(HashItem(state_root));
  fields.push_back(HashItem(tx_root));
  fields.push_back(HashItem(receipt_root));
  fields.push_back(rlp::Item::Scalar(gas_used));
  fields.push_back(rlp::Item::Scalar(gas_limit));
  return rlp::Encode(rlp::Item::List(std::move(fields)));
}

Hash32 BlockHeader::Hash() const { return Keccak256(Encode()); }

Bytes Receipt::Encode() const {
  std::vector<rlp::Item> fields;
  fields.push_back(HashItem(tx_hash));
  fields.push_back(rlp::Item::Scalar(success ? 1 : 0));
  fields.push_back(rlp::Item::Scalar(cumulative_gas_used));
  std::vector<rlp::Item> log_items;
  for (const auto& log : logs) {
    std::vector<rlp::Item> topics;
    for (const auto& t : log.topics) {
      topics.push_back(rlp::Item::String(t.ToBytes()));
    }
    std::vector<rlp::Item> entry;
    entry.push_back(rlp::Item::String(log.address.view()));
    entry.push_back(rlp::Item::List(std::move(topics)));
    entry.push_back(rlp::Item::String(log.data));
    log_items.push_back(rlp::Item::List(std::move(entry)));
  }
  fields.push_back(rlp::Item::List(std::move(log_items)));
  return rlp::Encode(rlp::Item::List(std::move(fields)));
}

std::string DescribeReceipt(const Receipt& receipt) {
  std::string out;
  out += "tx " + ToHex0x(BytesView(receipt.tx_hash.data(),
                                   receipt.tx_hash.size()));
  out += "\n  status:   ";
  out += receipt.success ? "success" : "failed";
  out += "\n  block:    " + std::to_string(receipt.block_number);
  out += "\n  gas used: " + std::to_string(receipt.gas_used);
  out += " (cumulative " + std::to_string(receipt.cumulative_gas_used) + ")";
  if (receipt.contract_address != Address()) {
    out += "\n  contract: " + receipt.contract_address.ToHex();
  }
  if (!receipt.output.empty()) {
    out += "\n  output:   " + ToHex0x(receipt.output);
  }
  out += "\n  logs:     " + std::to_string(receipt.logs.size());
  for (size_t i = 0; i < receipt.logs.size(); ++i) {
    const evm::LogEntry& log = receipt.logs[i];
    out += "\n    log[" + std::to_string(i) + "] " + log.address.ToHex();
    for (const U256& topic : log.topics) {
      out += "\n      topic " + topic.ToHexFull();
    }
    out += "\n      data  ";
    out += log.data.empty() ? "(empty)" : ToHex0x(log.data);
  }
  return out;
}

}  // namespace onoff::chain
