// A small fixed-size worker pool for embarrassingly parallel batches —
// sender pre-recovery in chain verification, batch signature checks, and
// benchmark fan-out. Deliberately minimal: a locked FIFO queue, futures for
// result/exception propagation, and a blocking ParallelFor. Tasks must not
// themselves block on the same pool (no nested ParallelFor from a worker).

#ifndef ONOFFCHAIN_SUPPORT_THREAD_POOL_H_
#define ONOFFCHAIN_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace onoff {

class ThreadPool {
 public:
  // 0 = one worker per hardware thread (at least one).
  explicit ThreadPool(size_t num_threads = 0);
  // Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  // Enqueues `fn` and returns a future for its result; an exception thrown
  // by `fn` surfaces from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

  // Runs fn(0), ..., fn(n-1) across the workers (the calling thread
  // participates) and blocks until every index has run. Iterations are
  // claimed dynamically, so per-index cost may vary freely. If any
  // iteration throws, the first exception (in completion order) is
  // rethrown after the loop finishes; the remaining iterations still run.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // A lazily created process-wide pool (never destroyed) sized to the
  // hardware. Use for incidental parallelism; owners with lifecycle needs
  // construct their own.
  static ThreadPool& Shared();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace onoff

#endif  // ONOFFCHAIN_SUPPORT_THREAD_POOL_H_
