// 20-byte Ethereum-style account address.

#ifndef ONOFFCHAIN_SUPPORT_ADDRESS_H_
#define ONOFFCHAIN_SUPPORT_ADDRESS_H_

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff {

class Address {
 public:
  static constexpr size_t kSize = 20;

  Address() : bytes_{} {}
  explicit Address(const std::array<uint8_t, kSize>& bytes) : bytes_(bytes) {}

  // Parses "0x"-prefixed or bare 40-digit hex.
  static Result<Address> FromHex(std::string_view hex) {
    ONOFF_ASSIGN_OR_RETURN(Bytes raw, onoff::FromHex(hex));
    if (raw.size() != kSize) {
      return Status::InvalidArgument("address must be 20 bytes");
    }
    Address out;
    std::memcpy(out.bytes_.data(), raw.data(), kSize);
    return out;
  }

  // Takes the low 20 bytes of a 32-byte word (EVM address coercion).
  static Address FromWord(const U256& word) {
    auto be = word.ToBigEndian();
    Address out;
    std::memcpy(out.bytes_.data(), be.data() + 12, kSize);
    return out;
  }

  static Result<Address> FromBytes(BytesView raw) {
    if (raw.size() != kSize) {
      return Status::InvalidArgument("address must be 20 bytes");
    }
    Address out;
    std::memcpy(out.bytes_.data(), raw.data(), kSize);
    return out;
  }

  const std::array<uint8_t, kSize>& bytes() const { return bytes_; }
  BytesView view() const { return BytesView(bytes_.data(), kSize); }
  bool IsZero() const {
    for (uint8_t b : bytes_) {
      if (b != 0) return false;
    }
    return true;
  }

  // Zero-extends to a 32-byte EVM word.
  U256 ToWord() const {
    return U256::FromBigEndianTruncating(view());
  }

  std::string ToHex() const { return onoff::ToHex0x(view()); }

  auto operator<=>(const Address&) const = default;

 private:
  std::array<uint8_t, kSize> bytes_;
};

}  // namespace onoff

// Hash support so Address can key unordered maps.
template <>
struct std::hash<onoff::Address> {
  size_t operator()(const onoff::Address& a) const noexcept {
    // Addresses are keccak outputs: the first 8 bytes are already uniform.
    size_t h;
    std::memcpy(&h, a.bytes().data(), sizeof(h));
    return h;
  }
};

#endif  // ONOFFCHAIN_SUPPORT_ADDRESS_H_
