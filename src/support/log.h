// A small structured logging helper: level-filtered printf-style records
// through one mutex-guarded writer, so diagnostics from different threads
// never interleave mid-line. This replaces ad-hoc std::cerr/fprintf(stderr)
// diagnostics across the tools and the chain node.
//
// Format: "[LEVEL] component: message\n" on stderr (or a test-injected
// sink). The level is process-global; it initialises from the environment
// variable ONOFF_LOG_LEVEL (trace|debug|info|warn|error|off) and every tool
// additionally accepts a --log-level flag via LevelFromArgs.
//
// Cost model: ONOFF_LOG expands to a level check before any argument is
// evaluated, so disabled statements cost one load + compare.

#ifndef ONOFFCHAIN_SUPPORT_LOG_H_
#define ONOFFCHAIN_SUPPORT_LOG_H_

#include <cstdio>
#include <string>

namespace onoff::log {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* LevelName(Level level);
// Parses "trace" / "debug" / "info" / "warn" / "error" / "off"
// (case-insensitive); defaults to `fallback` on anything else.
Level LevelFromString(const std::string& text, Level fallback = Level::kInfo);

// The process-global threshold. Records below it are dropped. The initial
// value comes from ONOFF_LOG_LEVEL (default: info).
Level GetLevel();
void SetLevel(Level level);
inline bool Enabled(Level level) { return level >= GetLevel(); }

// Parses and removes "--log-level <value>" / "--log-level=<value>" from
// argv (compacting argc) and applies it via SetLevel. Returns the applied
// level (the env/default level when the flag is absent).
Level LevelFromArgs(int* argc, char** argv);

// Emits one record through the single writer. `component` names the
// subsystem ("chain", "cli", "trace", ...).
void Logf(Level level, const char* component, const char* format, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

// Redirects output for tests; nullptr restores stderr.
void SetSinkForTest(FILE* sink);

// An optional secondary consumer of formatted records (the obs flight
// recorder registers here — support cannot depend on obs). Called after the
// level filter with the fully formatted message, outside the writer mutex.
// nullptr detaches. The hook must not call ONOFF_LOG (it would recurse).
using RecordHook = void (*)(Level level, const char* component,
                            const char* message);
void SetRecordHook(RecordHook hook);

}  // namespace onoff::log

// The call-site macro: evaluates arguments only when the level passes.
#define ONOFF_LOG(level, component, ...)                       \
  do {                                                         \
    if (::onoff::log::Enabled(level)) {                        \
      ::onoff::log::Logf(level, component, __VA_ARGS__);       \
    }                                                          \
  } while (0)

#endif  // ONOFFCHAIN_SUPPORT_LOG_H_
