#include "support/bytes.h"

namespace onoff {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

// Returns the value of a hex digit or -1.
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string ToHex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::string ToHex0x(BytesView data) { return "0x" + ToHex(data); }

Result<Bytes> FromHex(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("invalid hex digit");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes Concat(std::initializer_list<BytesView> parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) Append(out, p);
  return out;
}

bool ConstantTimeEqual(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

Bytes BytesOf(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace onoff
