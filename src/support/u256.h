// 256-bit unsigned integer with the arithmetic the EVM and secp256k1 need.
//
// Representation: four 64-bit little-endian limbs (limb 0 is least
// significant). All arithmetic wraps modulo 2^256 unless stated otherwise.
// Signed operations interpret the value as two's complement, matching EVM
// SDIV/SMOD/SLT/SGT/SAR/SIGNEXTEND semantics.

#ifndef ONOFFCHAIN_SUPPORT_U256_H_
#define ONOFFCHAIN_SUPPORT_U256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "support/bytes.h"
#include "support/status.h"

namespace onoff {

class U256 {
 public:
  constexpr U256() : limbs_{0, 0, 0, 0} {}
  constexpr U256(uint64_t v) : limbs_{v, 0, 0, 0} {}  // NOLINT: deliberate
  constexpr U256(uint64_t l3, uint64_t l2, uint64_t l1, uint64_t l0)
      : limbs_{l0, l1, l2, l3} {}

  // Parses a hex string (optionally "0x"-prefixed, at most 64 digits).
  static Result<U256> FromHex(std::string_view hex);
  // Parses a decimal string.
  static Result<U256> FromDecimal(std::string_view dec);
  // Big-endian bytes, at most 32; shorter inputs are left-padded with zeros.
  static Result<U256> FromBigEndian(BytesView bytes);
  // As FromBigEndian but truncates inputs longer than 32 bytes to their low
  // 32 bytes (EVM calldata convention never needs this; trie keys may).
  static U256 FromBigEndianTruncating(BytesView bytes);

  // 32 big-endian bytes, zero-padded.
  std::array<uint8_t, 32> ToBigEndian() const;
  Bytes ToBytes() const;  // same as ToBigEndian, as a Bytes
  // Minimal big-endian representation (empty for zero).
  Bytes ToBigEndianTrimmed() const;
  // 64-digit zero-padded lowercase hex, no prefix.
  std::string ToHexFull() const;
  // Minimal hex with "0x" prefix ("0x0" for zero).
  std::string ToHex() const;
  std::string ToDecimal() const;

  uint64_t limb(int i) const { return limbs_[i]; }
  bool IsZero() const {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  // Low 64 bits; callers must check FitsUint64 when truncation matters.
  uint64_t low64() const { return limbs_[0]; }
  bool FitsUint64() const {
    return (limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  // Index of the highest set bit plus one (0 for zero).
  int BitLength() const;
  bool Bit(int i) const {
    return (limbs_[i / 64] >> (i % 64)) & 1;
  }
  void SetBit(int i) { limbs_[i / 64] |= uint64_t{1} << (i % 64); }
  // Sign bit for two's-complement interpretation.
  bool IsNegative() const { return (limbs_[3] >> 63) != 0; }

  // Wrapping arithmetic (mod 2^256).
  U256 operator+(const U256& o) const;
  U256 operator-(const U256& o) const;
  U256 operator*(const U256& o) const;
  U256 operator-() const { return U256() - *this; }

  // Division/modulo; division by zero yields zero (EVM semantics).
  U256 operator/(const U256& o) const;
  U256 operator%(const U256& o) const;
  // Signed division/modulo with EVM SDIV/SMOD semantics.
  U256 SDiv(const U256& o) const;
  U256 SMod(const U256& o) const;

  // (a + b) mod m and (a * b) mod m with 512-bit intermediates.
  static U256 AddMod(const U256& a, const U256& b, const U256& m);
  static U256 MulMod(const U256& a, const U256& b, const U256& m);
  // a^e mod 2^256 (EVM EXP).
  U256 Exp(const U256& e) const;

  // Bitwise.
  U256 operator&(const U256& o) const;
  U256 operator|(const U256& o) const;
  U256 operator^(const U256& o) const;
  U256 operator~() const;
  U256 operator<<(unsigned n) const;
  U256 operator>>(unsigned n) const;
  // Arithmetic shift right (EVM SAR).
  U256 Sar(unsigned n) const;
  // EVM SIGNEXTEND: extends the sign of byte `byte_index` (0 = LSB).
  U256 SignExtend(unsigned byte_index) const;

  U256& operator+=(const U256& o) { return *this = *this + o; }
  U256& operator-=(const U256& o) { return *this = *this - o; }
  U256& operator*=(const U256& o) { return *this = *this * o; }

  bool operator==(const U256& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const U256& o) const { return !(*this == o); }
  bool operator<(const U256& o) const;
  bool operator>(const U256& o) const { return o < *this; }
  bool operator<=(const U256& o) const { return !(o < *this); }
  bool operator>=(const U256& o) const { return !(*this < o); }
  // Signed comparison (EVM SLT).
  bool SLess(const U256& o) const;

 private:
  // limbs_[0] = least significant.
  std::array<uint64_t, 4> limbs_;
};

// Quotient and remainder in one pass; division by zero yields {0, 0}.
struct DivModResult {
  U256 quotient;
  U256 remainder;
};
DivModResult DivMod(const U256& num, const U256& den);

}  // namespace onoff

// Hash support so U256 can key unordered maps (e.g. contract storage).
template <>
struct std::hash<onoff::U256> {
  size_t operator()(const onoff::U256& v) const noexcept {
    // Storage keys are usually small integers or keccak outputs; fold all
    // limbs so both distributions hash well.
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 4; ++i) {
      h ^= v.limb(i) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

#endif  // ONOFFCHAIN_SUPPORT_U256_H_
