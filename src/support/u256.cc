#include "support/u256.h"

#include <algorithm>
#include <cassert>

namespace onoff {

namespace {

using u128 = unsigned __int128;

// 512-bit little-endian limb vector used for MulMod intermediates.
using Limbs8 = std::array<uint64_t, 8>;

// Full 256x256 -> 512 bit product.
Limbs8 MulFull(const U256& a, const U256& b) {
  Limbs8 out{};
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 cur = static_cast<u128>(a.limb(i)) * b.limb(j) + out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + 4] = carry;
  }
  return out;
}

int BitLength8(const Limbs8& v) {
  for (int i = 7; i >= 0; --i) {
    if (v[i] != 0) return i * 64 + 64 - __builtin_clzll(v[i]);
  }
  return 0;
}

// v -= m << shift, assuming no borrow out (caller guarantees v >= m<<shift).
void SubShifted(Limbs8& v, const U256& m, int shift) {
  int limb_shift = shift / 64;
  int bit_shift = shift % 64;
  // Build shifted m as 8 limbs.
  Limbs8 sm{};
  for (int i = 0; i < 4; ++i) {
    uint64_t lo = m.limb(i) << bit_shift;
    sm[i + limb_shift] |= lo;
    if (bit_shift != 0 && i + limb_shift + 1 < 8) {
      sm[i + limb_shift + 1] |= m.limb(i) >> (64 - bit_shift);
    }
  }
  uint64_t borrow = 0;
  for (int i = 0; i < 8; ++i) {
    u128 lhs = v[i];
    u128 rhs = static_cast<u128>(sm[i]) + borrow;
    if (lhs >= rhs) {
      v[i] = static_cast<uint64_t>(lhs - rhs);
      borrow = 0;
    } else {
      v[i] = static_cast<uint64_t>((u128(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  assert(borrow == 0);
}

// Compares v (512-bit) against m << shift.
bool GreaterEqualShifted(const Limbs8& v, const U256& m, int shift) {
  int limb_shift = shift / 64;
  int bit_shift = shift % 64;
  Limbs8 sm{};
  for (int i = 0; i < 4; ++i) {
    sm[i + limb_shift] |= m.limb(i) << bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < 8) {
      sm[i + limb_shift + 1] |= m.limb(i) >> (64 - bit_shift);
    }
  }
  for (int i = 7; i >= 0; --i) {
    if (v[i] != sm[i]) return v[i] > sm[i];
  }
  return true;
}

// 512-bit value mod m (m != 0), via shift-subtract long division.
U256 Mod512(Limbs8 v, const U256& m) {
  int mbits = m.BitLength();
  int vbits = BitLength8(v);
  for (int shift = vbits - mbits; shift >= 0; --shift) {
    if (GreaterEqualShifted(v, m, shift)) {
      SubShifted(v, m, shift);
    }
  }
  return U256(v[3], v[2], v[1], v[0]);
}

}  // namespace

Result<U256> U256::FromHex(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.empty() || hex.size() > 64) {
    return Status::InvalidArgument("U256 hex must have 1..64 digits");
  }
  U256 out;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      return Status::InvalidArgument("invalid hex digit in U256");
    }
    out = (out << 4) | U256(static_cast<uint64_t>(v));
  }
  return out;
}

Result<U256> U256::FromDecimal(std::string_view dec) {
  if (dec.empty()) return Status::InvalidArgument("empty decimal");
  U256 out;
  const U256 ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid decimal digit");
    }
    U256 next = out * ten + U256(static_cast<uint64_t>(c - '0'));
    // Overflow check: next must be >= out when multiplying by 10 unless wrap.
    if (next < out) return Status::OutOfRange("decimal exceeds 2^256");
    out = next;
  }
  return out;
}

Result<U256> U256::FromBigEndian(BytesView bytes) {
  if (bytes.size() > 32) {
    return Status::InvalidArgument("U256 big-endian input exceeds 32 bytes");
  }
  return FromBigEndianTruncating(bytes);
}

U256 U256::FromBigEndianTruncating(BytesView bytes) {
  if (bytes.size() > 32) bytes = bytes.subspan(bytes.size() - 32);
  U256 out;
  for (uint8_t b : bytes) {
    out = (out << 8) | U256(static_cast<uint64_t>(b));
  }
  return out;
}

std::array<uint8_t, 32> U256::ToBigEndian() const {
  std::array<uint8_t, 32> out{};
  for (int i = 0; i < 32; ++i) {
    out[31 - i] = static_cast<uint8_t>(limbs_[i / 8] >> ((i % 8) * 8));
  }
  return out;
}

Bytes U256::ToBytes() const {
  auto arr = ToBigEndian();
  return Bytes(arr.begin(), arr.end());
}

Bytes U256::ToBigEndianTrimmed() const {
  auto arr = ToBigEndian();
  size_t start = 0;
  while (start < 32 && arr[start] == 0) ++start;
  return Bytes(arr.begin() + start, arr.end());
}

std::string U256::ToHexFull() const {
  auto arr = ToBigEndian();
  return onoff::ToHex(arr);
}

std::string U256::ToHex() const {
  std::string full = ToHexFull();
  size_t start = full.find_first_not_of('0');
  if (start == std::string::npos) return "0x0";
  return "0x" + full.substr(start);
}

std::string U256::ToDecimal() const {
  if (IsZero()) return "0";
  U256 v = *this;
  std::string out;
  const U256 ten(10);
  while (!v.IsZero()) {
    DivModResult dm = onoff::DivMod(v, ten);
    out.push_back(static_cast<char>('0' + dm.remainder.low64()));
    v = dm.quotient;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

int U256::BitLength() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] != 0) return i * 64 + 64 - __builtin_clzll(limbs_[i]);
  }
  return 0;
}

U256 U256::operator+(const U256& o) const {
  U256 out;
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 sum = static_cast<u128>(limbs_[i]) + o.limbs_[i] + carry;
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  return out;
}

U256 U256::operator-(const U256& o) const {
  U256 out;
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 lhs = limbs_[i];
    u128 rhs = static_cast<u128>(o.limbs_[i]) + borrow;
    if (lhs >= rhs) {
      out.limbs_[i] = static_cast<uint64_t>(lhs - rhs);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<uint64_t>((u128(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  return out;
}

U256 U256::operator*(const U256& o) const {
  // Fast path: both fit in 64 bits — one hardware 64x64->128 multiply.
  if (FitsUint64() && o.FitsUint64()) {
    u128 p = static_cast<u128>(limbs_[0]) * o.limbs_[0];
    return U256(0, 0, static_cast<uint64_t>(p >> 64),
                static_cast<uint64_t>(p));
  }
  Limbs8 full = MulFull(*this, o);
  return U256(full[3], full[2], full[1], full[0]);
}

DivModResult DivMod(const U256& num, const U256& den) {
  if (den.IsZero()) return {U256(), U256()};
  if (num < den) return {U256(), num};
  // Fast path: both fit in 64 bits.
  if (num.FitsUint64() && den.FitsUint64()) {
    return {U256(num.low64() / den.low64()), U256(num.low64() % den.low64())};
  }
  // Power-of-two divisor: shift and mask (covers the EVM's ubiquitous
  // DIV/MOD by 2^n address- and word-packing arithmetic).
  U256 den_minus_1 = den - U256(1);
  if ((den & den_minus_1).IsZero()) {
    unsigned k = static_cast<unsigned>(den.BitLength() - 1);
    return {num >> k, num & den_minus_1};
  }
  // Single-limb divisor: schoolbook 128/64 division, one hardware divide
  // per limb instead of one compare-subtract per bit.
  if (den.FitsUint64()) {
    uint64_t d = den.low64();
    uint64_t q[4];
    uint64_t rem = 0;
    for (int i = 3; i >= 0; --i) {
      u128 cur = (static_cast<u128>(rem) << 64) | num.limb(i);
      q[i] = static_cast<uint64_t>(cur / d);
      rem = static_cast<uint64_t>(cur % d);
    }
    return {U256(q[3], q[2], q[1], q[0]), U256(rem)};
  }
  U256 quotient;
  U256 rem = num;
  int shift = num.BitLength() - den.BitLength();
  U256 shifted_den = den << static_cast<unsigned>(shift);
  for (; shift >= 0; --shift) {
    if (rem >= shifted_den) {
      rem -= shifted_den;
      quotient.SetBit(shift);
    }
    shifted_den = shifted_den >> 1;
  }
  return {quotient, rem};
}

U256 U256::operator/(const U256& o) const { return onoff::DivMod(*this, o).quotient; }
U256 U256::operator%(const U256& o) const { return onoff::DivMod(*this, o).remainder; }

U256 U256::SDiv(const U256& o) const {
  if (o.IsZero()) return U256();
  bool neg_num = IsNegative();
  bool neg_den = o.IsNegative();
  U256 a = neg_num ? -*this : *this;
  U256 b = neg_den ? -o : o;
  U256 q = a / b;
  return (neg_num != neg_den) ? -q : q;
}

U256 U256::SMod(const U256& o) const {
  if (o.IsZero()) return U256();
  bool neg_num = IsNegative();
  U256 a = neg_num ? -*this : *this;
  U256 b = o.IsNegative() ? -o : o;
  U256 r = a % b;
  return neg_num ? -r : r;
}

U256 U256::AddMod(const U256& a, const U256& b, const U256& m) {
  if (m.IsZero()) return U256();
  // Fast path: everything fits in 64 bits — the 65-bit sum fits a u128.
  if (a.FitsUint64() && b.FitsUint64() && m.FitsUint64()) {
    u128 s = static_cast<u128>(a.limbs_[0]) + b.limbs_[0];
    return U256(static_cast<uint64_t>(s % m.limbs_[0]));
  }
  // Compute the 257-bit sum as 8 limbs, then reduce.
  Limbs8 sum{};
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 s = static_cast<u128>(a.limb(i)) + b.limb(i) + carry;
    sum[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  sum[4] = carry;
  return Mod512(sum, m);
}

U256 U256::MulMod(const U256& a, const U256& b, const U256& m) {
  if (m.IsZero()) return U256();
  // Fast path: everything fits in 64 bits — the product fits a u128.
  if (a.FitsUint64() && b.FitsUint64() && m.FitsUint64()) {
    u128 p = static_cast<u128>(a.limbs_[0]) * b.limbs_[0];
    return U256(static_cast<uint64_t>(p % m.limbs_[0]));
  }
  // The 512-bit product reduced by a divisor that fits one limb never
  // needs the shift-subtract loop: divide limb-by-limb from the top.
  if (m.FitsUint64()) {
    Limbs8 full = MulFull(a, b);
    uint64_t d = m.limbs_[0];
    uint64_t rem = 0;
    for (int i = 7; i >= 0; --i) {
      u128 cur = (static_cast<u128>(rem) << 64) | full[i];
      rem = static_cast<uint64_t>(cur % d);
    }
    return U256(rem);
  }
  return Mod512(MulFull(a, b), m);
}

U256 U256::Exp(const U256& e) const {
  if (e.IsZero()) return U256(1);  // includes 0^0 == 1 (EVM semantics)
  if (IsZero()) return U256();
  if (*this == U256(1)) return U256(1);
  // Power-of-two base: (2^k)^e = 2^(k*e) mod 2^256, a single shift (zero
  // once k*e >= 256). k >= 1 here since base == 1 was handled above.
  if ((*this & (*this - U256(1))).IsZero()) {
    uint64_t k = static_cast<uint64_t>(BitLength() - 1);
    if (!e.FitsUint64() || e.low64() >= 256) return U256();
    uint64_t shift = k * e.low64();
    if (shift >= 256) return U256();
    return U256(1) << static_cast<unsigned>(shift);
  }
  U256 base = *this;
  U256 result(1);
  for (int i = 0; i < e.BitLength(); ++i) {
    if (e.Bit(i)) result *= base;
    base *= base;
  }
  return result;
}

U256 U256::operator&(const U256& o) const {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limbs_[i] = limbs_[i] & o.limbs_[i];
  return out;
}

U256 U256::operator|(const U256& o) const {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limbs_[i] = limbs_[i] | o.limbs_[i];
  return out;
}

U256 U256::operator^(const U256& o) const {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limbs_[i] = limbs_[i] ^ o.limbs_[i];
  return out;
}

U256 U256::operator~() const {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limbs_[i] = ~limbs_[i];
  return out;
}

U256 U256::operator<<(unsigned n) const {
  if (n >= 256) return U256();
  U256 out;
  unsigned limb_shift = n / 64;
  unsigned bit_shift = n % 64;
  for (int i = 3; i >= 0; --i) {
    uint64_t v = 0;
    int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      v = limbs_[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) {
        v |= limbs_[src - 1] >> (64 - bit_shift);
      }
    }
    out.limbs_[i] = v;
  }
  return out;
}

U256 U256::operator>>(unsigned n) const {
  if (n >= 256) return U256();
  U256 out;
  unsigned limb_shift = n / 64;
  unsigned bit_shift = n % 64;
  for (int i = 0; i < 4; ++i) {
    uint64_t v = 0;
    unsigned src = i + limb_shift;
    if (src < 4) {
      v = limbs_[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < 4) {
        v |= limbs_[src + 1] << (64 - bit_shift);
      }
    }
    out.limbs_[i] = v;
  }
  return out;
}

U256 U256::Sar(unsigned n) const {
  if (!IsNegative()) return *this >> n;
  if (n >= 256) return ~U256();
  // Shift right then set the top n bits.
  U256 out = *this >> n;
  U256 mask = (~U256()) << (256 - n);
  return out | mask;
}

U256 U256::SignExtend(unsigned byte_index) const {
  if (byte_index >= 31) return *this;
  int sign_bit = static_cast<int>(byte_index) * 8 + 7;
  if (!Bit(sign_bit)) {
    // Clear everything above.
    U256 mask = ((~U256()) >> static_cast<unsigned>(255 - sign_bit));
    return *this & mask;
  }
  U256 mask = (~U256()) << static_cast<unsigned>(sign_bit + 1);
  return *this | mask;
}

bool U256::operator<(const U256& o) const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i];
  }
  return false;
}

bool U256::SLess(const U256& o) const {
  bool an = IsNegative();
  bool bn = o.IsNegative();
  if (an != bn) return an;
  return *this < o;
}

}  // namespace onoff
