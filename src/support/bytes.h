// Byte-buffer aliases and hex utilities shared across the library.

#ifndef ONOFFCHAIN_SUPPORT_BYTES_H_
#define ONOFFCHAIN_SUPPORT_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace onoff {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

// Lowercase hex without "0x" prefix.
std::string ToHex(BytesView data);

// Lowercase hex with "0x" prefix (Ethereum convention).
std::string ToHex0x(BytesView data);

// Parses hex (with or without "0x" prefix, case-insensitive). The string must
// have even length.
Result<Bytes> FromHex(std::string_view hex);

// Appends `src` to `dst`.
void Append(Bytes& dst, BytesView src);

// Concatenates any number of byte views.
Bytes Concat(std::initializer_list<BytesView> parts);

// Constant-time equality (for signature/digest comparisons).
bool ConstantTimeEqual(BytesView a, BytesView b);

// Bytes from a string's raw characters.
Bytes BytesOf(std::string_view s);

}  // namespace onoff

#endif  // ONOFFCHAIN_SUPPORT_BYTES_H_
