#include "support/status.h"

namespace onoff {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kVerificationFailed:
      return "VerificationFailed";
    case StatusCode::kExecutionReverted:
      return "ExecutionReverted";
    case StatusCode::kOutOfGas:
      return "OutOfGas";
    case StatusCode::kAnalysisRejected:
      return "AnalysisRejected";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace onoff
