// Status / Result<T> error propagation for the onoffchain library.
//
// The core library does not use exceptions (Arrow/RocksDB idiom): fallible
// operations return a Status, or a Result<T> which is either a value or a
// Status. Use the ONOFF_RETURN_NOT_OK / ONOFF_ASSIGN_OR_RETURN macros to
// propagate errors up the call stack.

#ifndef ONOFFCHAIN_SUPPORT_STATUS_H_
#define ONOFFCHAIN_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace onoff {

// Broad error category, mirroring the failure classes of the system: input
// decoding, cryptographic verification, VM execution, chain validation, and
// protocol (framework) violations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kVerificationFailed,  // signature/integrity checks
  kExecutionReverted,   // EVM REVERT
  kOutOfGas,
  kAnalysisRejected,    // static analysis refused the bytecode
  kInternal,
};

// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status VerificationFailed(std::string msg) {
    return Status(StatusCode::kVerificationFailed, std::move(msg));
  }
  static Status ExecutionReverted(std::string msg) {
    return Status(StatusCode::kExecutionReverted, std::move(msg));
  }
  static Status OutOfGas(std::string msg) {
    return Status(StatusCode::kOutOfGas, std::move(msg));
  }
  static Status AnalysisRejected(std::string msg) {
    return Status(StatusCode::kAnalysisRejected, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace onoff

// Propagates a non-OK Status from an expression returning Status.
#define ONOFF_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::onoff::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define ONOFF_CONCAT_IMPL(x, y) x##y
#define ONOFF_CONCAT(x, y) ONOFF_CONCAT_IMPL(x, y)

// Evaluates an expression returning Result<T>; on success binds the value to
// `lhs`, otherwise returns the error Status.
#define ONOFF_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  ONOFF_ASSIGN_OR_RETURN_IMPL(ONOFF_CONCAT(_res_, __LINE__), lhs, rexpr)

#define ONOFF_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // ONOFFCHAIN_SUPPORT_STATUS_H_
