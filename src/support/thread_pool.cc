#include "support/thread_pool.h"

#include <algorithm>

namespace onoff {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Tasks submitted during shutdown would never run; the contract is that
    // owners stop submitting before destruction, so run inline as a last
    // resort rather than silently dropping the promise.
    if (stopping_) {
      task();
      return;
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into its future
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::atomic<size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  auto drain = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  // The caller is one lane; add at most n-1 helpers.
  size_t helpers = std::min(worker_count(), n - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t i = 0; i < helpers; ++i) futures.push_back(Submit(drain));
  drain();
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::Shared() {
  // Leaked deliberately: outlives every static user, no shutdown ordering.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace onoff
