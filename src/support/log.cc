#include "support/log.h"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace onoff::log {

namespace {

std::atomic<int>& LevelStore() {
  static std::atomic<int> level = [] {
    const char* env = std::getenv("ONOFF_LOG_LEVEL");
    Level initial = env != nullptr ? LevelFromString(env) : Level::kInfo;
    return static_cast<int>(initial);
  }();
  return level;
}

std::mutex& WriterMutex() {
  static std::mutex mu;
  return mu;
}

std::atomic<FILE*>& SinkStore() {
  static std::atomic<FILE*> sink{nullptr};
  return sink;
}

std::atomic<RecordHook>& RecordHookStore() {
  static std::atomic<RecordHook> hook{nullptr};
  return hook;
}

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  if (a.size() != std::strlen(b)) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) != b[i]) return false;
  }
  return true;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kTrace:
      return "trace";
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "unknown";
}

Level LevelFromString(const std::string& text, Level fallback) {
  for (Level level : {Level::kTrace, Level::kDebug, Level::kInfo, Level::kWarn,
                      Level::kError, Level::kOff}) {
    if (EqualsIgnoreCase(text, LevelName(level))) return level;
  }
  return fallback;
}

Level GetLevel() { return static_cast<Level>(LevelStore().load(std::memory_order_relaxed)); }

void SetLevel(Level level) {
  LevelStore().store(static_cast<int>(level), std::memory_order_relaxed);
}

Level LevelFromArgs(int* argc, char** argv) {
  const char* kFlag = "--log-level";
  const size_t kFlagLen = std::strlen(kFlag);
  std::string value;
  bool found = false;
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, kFlag) == 0 && i + 1 < *argc) {
      value = argv[i + 1];
      found = true;
      ++i;
      continue;
    }
    if (std::strncmp(arg, kFlag, kFlagLen) == 0 && arg[kFlagLen] == '=') {
      value = arg + kFlagLen + 1;
      found = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  if (found) SetLevel(LevelFromString(value, GetLevel()));
  return GetLevel();
}

void Logf(Level level, const char* component, const char* format, ...) {
  if (!Enabled(level)) return;
  char message[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);
  if (RecordHook hook = RecordHookStore().load(std::memory_order_acquire)) {
    hook(level, component, message);
  }
  FILE* sink = SinkStore().load(std::memory_order_acquire);
  if (sink == nullptr) sink = stderr;
  std::lock_guard<std::mutex> lock(WriterMutex());
  std::fprintf(sink, "[%s] %s: %s\n", LevelName(level), component, message);
  std::fflush(sink);
}

void SetRecordHook(RecordHook hook) {
  RecordHookStore().store(hook, std::memory_order_release);
}

void SetSinkForTest(FILE* sink) {
  SinkStore().store(sink, std::memory_order_release);
}

}  // namespace onoff::log
