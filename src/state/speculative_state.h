// A copy-on-write overlay over a frozen WorldState, recording per-field
// read and write sets — the substrate of optimistic parallel transaction
// execution (chain/parallel_executor.h).
//
// A transaction speculated on an overlay only ever *reads* the base (all
// mutation lands in the overlay), so many overlays can execute concurrently
// against one base. Every value pulled from the base is recorded in the
// read set at the granularity the conflict detector needs: account
// existence, balance, nonce, code, and individual storage slots. Every
// mutation is recorded in the write set at the same granularity
// (SELFDESTRUCT coarsens to a whole-account write). A speculation is valid
// — its overlay may be committed verbatim — exactly when its read set is
// disjoint from the writes committed by earlier transactions in the block.

#ifndef ONOFFCHAIN_STATE_SPECULATIVE_STATE_H_
#define ONOFFCHAIN_STATE_SPECULATIVE_STATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>
#include <vector>

#include "state/state_view.h"
#include "state/world_state.h"

namespace onoff::state {

// Access-location key encodings: 20 address bytes + one kind byte
// (+ 32 slot bytes for storage). Collisions across kinds are impossible
// because the kind byte differs and lengths match per kind. Exposed so the
// chain layer can pre-build static access hints (analysis summaries) in
// exactly the encoding the dynamic recorder uses.
namespace access_key {
std::string Account(const Address& addr);  // bare address (wholesale write)
std::string Existence(const Address& addr);
std::string Balance(const Address& addr);
std::string Nonce(const Address& addr);
std::string Code(const Address& addr);
std::string Slot(const Address& addr, const U256& slot);
}  // namespace access_key

// A set of state locations touched by one speculative execution. `keys`
// holds encoded (address, kind[, slot]) locations; `accounts` holds
// addresses written wholesale (SELFDESTRUCT), which conflict with any
// access to that address.
struct AccessSet {
  std::unordered_set<std::string> keys;
  std::unordered_set<std::string> accounts;

  // True when `this` (interpreted as a read set) overlaps `writes`.
  bool Intersects(const AccessSet& writes) const;
  // True when every location in `other` is covered by this set: each key
  // is present verbatim or its address is covered wholesale, and each
  // wholesale account is covered wholesale. The containment oracle for
  // static-over-dynamic soundness checks.
  bool Covers(const AccessSet& other) const;
  // Accumulates another set (used for the block's committed-writes union).
  void MergeFrom(const AccessSet& other);
  size_t size() const { return keys.size() + accounts.size(); }
};

class SpeculativeState final : public StateView {
 public:
  // `base` must outlive this view and stay unmodified while the view is
  // live (commits to the base happen after the view's execution finished).
  explicit SpeculativeState(const WorldState& base) : base_(&base) {}

  // ---- StateView ----
  bool Exists(const Address& addr) const override;
  void CreateAccount(const Address& addr) override;
  void DeleteAccount(const Address& addr) override;
  U256 GetBalance(const Address& addr) const override;
  void AddBalance(const Address& addr, const U256& amount) override;
  Status SubBalance(const Address& addr, const U256& amount) override;
  uint64_t GetNonce(const Address& addr) const override;
  void SetNonce(const Address& addr, uint64_t nonce) override;
  const Bytes& GetCode(const Address& addr) const override;
  void SetCode(const Address& addr, Bytes code) override;
  // Computed (and memoized) inside THIS overlay rather than forwarded to
  // the base: the base's lazy per-account memo is not safe to fill from
  // the many overlays executing concurrently over it.
  Hash32 GetCodeHash(const Address& addr) const override;
  U256 GetStorage(const Address& addr, const U256& key) const override;
  void SetStorage(const Address& addr, const U256& key,
                  const U256& value) override;
  Snapshot TakeSnapshot() const override { return journal_.size(); }
  void RevertToSnapshot(Snapshot snap) override;
  void ClearJournal() override { journal_.clear(); }

  // Recorded as a balance *write* plus a commutative pending delta — not a
  // read — so per-transaction miner fees do not serialize the block. Must
  // be the last mutation of the execution (it is not journaled and later
  // overlay reads of `addr` would not see it).
  void CreditFee(const Address& addr, const U256& amount) override;

  // ---- Speculation results ----
  const AccessSet& reads() const { return reads_; }
  const AccessSet& writes() const { return writes_; }

  // Replays this overlay's writes onto `target` (normally the base this
  // view was created over, after earlier transactions committed). Writes
  // are absolute except fee credits, which apply as balance deltas.
  void ApplyTo(WorldState& target) const;

 private:
  struct OverlayAccount {
    bool exists = false;
    bool base_existed = false;
    // Lazily loaded fields; `*_loaded` marks the value authoritative.
    bool nonce_loaded = false;
    bool balance_loaded = false;
    bool code_loaded = false;
    uint64_t nonce = 0;
    U256 balance;
    Bytes code;
    // Lazy keccak of `code`; reset on every code write or revert.
    std::optional<Hash32> code_hash_cache;
    std::unordered_map<U256, U256> storage;  // materialized slots
    // Dirty flags: what ApplyTo must write back.
    bool existence_written = false;
    bool nonce_written = false;
    bool balance_written = false;
    bool code_written = false;
    std::unordered_set<U256> slots_written;
    // SELFDESTRUCTed: the base's record is dead for this view; reads after
    // the wipe are self-inflicted and record no base dependence.
    bool wiped = false;
  };

  struct JBalance {
    Address addr;
    U256 prev;
    bool prev_written = false;
  };
  struct JNonce {
    Address addr;
    uint64_t prev = 0;
    bool prev_written = false;
  };
  struct JCode {
    Address addr;
    Bytes prev;
    bool prev_written = false;
  };
  struct JStorage {
    Address addr;
    U256 key;
    U256 prev;
    bool prev_written = false;
  };
  struct JCreate {
    Address addr;
    bool prev_exists = false;
    bool prev_written = false;
  };
  struct JDelete {
    Address addr;
    OverlayAccount prev;
  };
  using JournalEntry =
      std::variant<JBalance, JNonce, JCode, JStorage, JCreate, JDelete>;

  OverlayAccount& Materialize(const Address& addr) const;
  void EnsureBalance(OverlayAccount& acc, const Address& addr) const;
  void EnsureNonce(OverlayAccount& acc, const Address& addr) const;
  void EnsureCode(OverlayAccount& acc, const Address& addr) const;
  // GetOrCreate parity with WorldState: mutators create absent accounts.
  OverlayAccount& MaterializeForWrite(const Address& addr);

  const WorldState* base_;
  // Reads materialize lazily through const accessors.
  mutable std::unordered_map<Address, OverlayAccount> overlay_;
  mutable AccessSet reads_;
  AccessSet writes_;
  std::vector<std::pair<Address, U256>> fee_credits_;
  mutable std::vector<JournalEntry> journal_;
};

}  // namespace onoff::state

#endif  // ONOFFCHAIN_STATE_SPECULATIVE_STATE_H_
