#include "state/speculative_state.h"

#include <algorithm>

// GCC 12's std::variant-in-vector inlining reports spurious
// -Wmaybe-uninitialized for journal alternatives that are always
// brace-initialized at their push sites (the same family of -O2/-O3 false
// positives as the -Wrestrict exclusions in CI; see GCC bug 80635).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace onoff::state {

namespace access_key {

namespace {
constexpr char kExistence = 'e';
constexpr char kBalance = 'b';
constexpr char kNonce = 'n';
constexpr char kCode = 'c';
constexpr char kStorage = 's';

std::string FieldKey(const Address& addr, char kind) {
  std::string key = Account(addr);
  key.push_back(kind);
  return key;
}
}  // namespace

std::string Account(const Address& addr) {
  return std::string(reinterpret_cast<const char*>(addr.view().data()),
                     Address::kSize);
}
std::string Existence(const Address& addr) {
  return FieldKey(addr, kExistence);
}
std::string Balance(const Address& addr) { return FieldKey(addr, kBalance); }
std::string Nonce(const Address& addr) { return FieldKey(addr, kNonce); }
std::string Code(const Address& addr) { return FieldKey(addr, kCode); }
std::string Slot(const Address& addr, const U256& slot) {
  std::string key = FieldKey(addr, kStorage);
  Bytes be = slot.ToBytes();
  key.append(reinterpret_cast<const char*>(be.data()), be.size());
  return key;
}

}  // namespace access_key

namespace {

using access_key::Account;

std::string FieldKey(const Address& addr, char kind) {
  std::string key = Account(addr);
  key.push_back(kind);
  return key;
}

std::string SlotKey(const Address& addr, const U256& slot) {
  return access_key::Slot(addr, slot);
}

constexpr char kExistence = 'e';
constexpr char kBalance = 'b';
constexpr char kNonce = 'n';
constexpr char kCode = 'c';

}  // namespace

bool AccessSet::Intersects(const AccessSet& writes) const {
  for (const std::string& key : keys) {
    if (writes.keys.count(key) > 0) return true;
    if (!writes.accounts.empty() &&
        writes.accounts.count(key.substr(0, Address::kSize)) > 0) {
      return true;
    }
  }
  return false;
}

bool AccessSet::Covers(const AccessSet& other) const {
  for (const std::string& key : other.keys) {
    if (keys.count(key) > 0) continue;
    if (!accounts.empty() &&
        accounts.count(key.substr(0, Address::kSize)) > 0) {
      continue;
    }
    return false;
  }
  for (const std::string& acc : other.accounts) {
    if (accounts.count(acc) == 0) return false;
  }
  return true;
}

void AccessSet::MergeFrom(const AccessSet& other) {
  keys.insert(other.keys.begin(), other.keys.end());
  accounts.insert(other.accounts.begin(), other.accounts.end());
}

SpeculativeState::OverlayAccount& SpeculativeState::Materialize(
    const Address& addr) const {
  auto it = overlay_.find(addr);
  if (it != overlay_.end()) return it->second;
  OverlayAccount acc;
  acc.base_existed = base_->Exists(addr);
  acc.exists = acc.base_existed;
  reads_.keys.insert(FieldKey(addr, kExistence));
  return overlay_.emplace(addr, std::move(acc)).first->second;
}

void SpeculativeState::EnsureBalance(OverlayAccount& acc,
                                     const Address& addr) const {
  if (acc.balance_loaded) return;
  if (acc.base_existed && !acc.wiped) {
    acc.balance = base_->GetBalance(addr);
    reads_.keys.insert(FieldKey(addr, kBalance));
  }
  acc.balance_loaded = true;
}

void SpeculativeState::EnsureNonce(OverlayAccount& acc,
                                   const Address& addr) const {
  if (acc.nonce_loaded) return;
  if (acc.base_existed && !acc.wiped) {
    acc.nonce = base_->GetNonce(addr);
    reads_.keys.insert(FieldKey(addr, kNonce));
  }
  acc.nonce_loaded = true;
}

void SpeculativeState::EnsureCode(OverlayAccount& acc,
                                  const Address& addr) const {
  if (acc.code_loaded) return;
  if (acc.base_existed && !acc.wiped) {
    acc.code = base_->GetCode(addr);
    reads_.keys.insert(FieldKey(addr, kCode));
  }
  acc.code_loaded = true;
}

SpeculativeState::OverlayAccount& SpeculativeState::MaterializeForWrite(
    const Address& addr) {
  OverlayAccount& acc = Materialize(addr);
  // GetOrCreate parity: WorldState mutators create absent accounts.
  if (!acc.exists) {
    journal_.push_back(JCreate{addr, acc.exists, acc.existence_written});
    acc.exists = true;
    acc.existence_written = true;
    writes_.keys.insert(FieldKey(addr, kExistence));
  }
  return acc;
}

bool SpeculativeState::Exists(const Address& addr) const {
  return Materialize(addr).exists;
}

void SpeculativeState::CreateAccount(const Address& addr) {
  (void)MaterializeForWrite(addr);
}

void SpeculativeState::DeleteAccount(const Address& addr) {
  OverlayAccount& acc = Materialize(addr);
  if (!acc.exists) return;
  journal_.push_back(JDelete{addr, acc});
  OverlayAccount wiped;
  wiped.base_existed = acc.base_existed;
  wiped.exists = false;
  wiped.nonce_loaded = wiped.balance_loaded = wiped.code_loaded = true;
  wiped.existence_written = true;
  wiped.wiped = true;
  acc = std::move(wiped);
  writes_.accounts.insert(access_key::Account(addr));
}

U256 SpeculativeState::GetBalance(const Address& addr) const {
  OverlayAccount& acc = Materialize(addr);
  EnsureBalance(acc, addr);
  return acc.balance;
}

void SpeculativeState::AddBalance(const Address& addr, const U256& amount) {
  OverlayAccount& acc = MaterializeForWrite(addr);
  EnsureBalance(acc, addr);
  journal_.push_back(JBalance{addr, acc.balance, acc.balance_written});
  acc.balance += amount;
  acc.balance_written = true;
  writes_.keys.insert(FieldKey(addr, kBalance));
}

Status SpeculativeState::SubBalance(const Address& addr, const U256& amount) {
  OverlayAccount& acc = MaterializeForWrite(addr);
  EnsureBalance(acc, addr);
  if (acc.balance < amount) {
    return Status::FailedPrecondition("insufficient balance");
  }
  journal_.push_back(JBalance{addr, acc.balance, acc.balance_written});
  acc.balance -= amount;
  acc.balance_written = true;
  writes_.keys.insert(FieldKey(addr, kBalance));
  return Status::OK();
}

uint64_t SpeculativeState::GetNonce(const Address& addr) const {
  OverlayAccount& acc = Materialize(addr);
  EnsureNonce(acc, addr);
  return acc.nonce;
}

void SpeculativeState::SetNonce(const Address& addr, uint64_t nonce) {
  OverlayAccount& acc = MaterializeForWrite(addr);
  EnsureNonce(acc, addr);
  journal_.push_back(JNonce{addr, acc.nonce, acc.nonce_written});
  acc.nonce = nonce;
  acc.nonce_written = true;
  writes_.keys.insert(FieldKey(addr, kNonce));
}

const Bytes& SpeculativeState::GetCode(const Address& addr) const {
  OverlayAccount& acc = Materialize(addr);
  EnsureCode(acc, addr);
  return acc.code;
}

void SpeculativeState::SetCode(const Address& addr, Bytes code) {
  OverlayAccount& acc = MaterializeForWrite(addr);
  EnsureCode(acc, addr);
  journal_.push_back(JCode{addr, std::move(acc.code), acc.code_written});
  acc.code = std::move(code);
  acc.code_hash_cache.reset();
  acc.code_written = true;
  writes_.keys.insert(FieldKey(addr, kCode));
}

Hash32 SpeculativeState::GetCodeHash(const Address& addr) const {
  OverlayAccount& acc = Materialize(addr);
  EnsureCode(acc, addr);
  if (!acc.code_hash_cache.has_value()) {
    acc.code_hash_cache = Keccak256(acc.code);
  }
  return *acc.code_hash_cache;
}

U256 SpeculativeState::GetStorage(const Address& addr, const U256& key) const {
  OverlayAccount& acc = Materialize(addr);
  auto it = acc.storage.find(key);
  if (it != acc.storage.end()) return it->second;
  if (!acc.base_existed || acc.wiped) return U256();
  U256 value = base_->GetStorage(addr, key);
  reads_.keys.insert(SlotKey(addr, key));
  acc.storage.emplace(key, value);
  return value;
}

void SpeculativeState::SetStorage(const Address& addr, const U256& key,
                                  const U256& value) {
  // Materialize the current value first so the journal can restore it (the
  // base pull records a read; conservative but matches SSTORE, which always
  // loads the slot for gas metering anyway).
  U256 prev = GetStorage(addr, key);
  OverlayAccount& acc = MaterializeForWrite(addr);
  journal_.push_back(
      JStorage{addr, key, prev, acc.slots_written.count(key) > 0});
  acc.storage[key] = value;
  acc.slots_written.insert(key);
  writes_.keys.insert(SlotKey(addr, key));
}

void SpeculativeState::CreditFee(const Address& addr, const U256& amount) {
  writes_.keys.insert(FieldKey(addr, kBalance));
  fee_credits_.emplace_back(addr, amount);
}

void SpeculativeState::RevertToSnapshot(Snapshot snap) {
  while (journal_.size() > snap) {
    JournalEntry entry = std::move(journal_.back());
    journal_.pop_back();
    std::visit(
        [this](auto&& e) {
          using T = std::decay_t<decltype(e)>;
          OverlayAccount& acc = overlay_[e.addr];
          if constexpr (std::is_same_v<T, JBalance>) {
            acc.balance = e.prev;
            acc.balance_written = e.prev_written;
          } else if constexpr (std::is_same_v<T, JNonce>) {
            acc.nonce = e.prev;
            acc.nonce_written = e.prev_written;
          } else if constexpr (std::is_same_v<T, JCode>) {
            acc.code = std::move(e.prev);
            acc.code_hash_cache.reset();
            acc.code_written = e.prev_written;
          } else if constexpr (std::is_same_v<T, JStorage>) {
            acc.storage[e.key] = e.prev;
            if (!e.prev_written) acc.slots_written.erase(e.key);
          } else if constexpr (std::is_same_v<T, JCreate>) {
            acc.exists = e.prev_exists;
            acc.existence_written = e.prev_written;
          } else if constexpr (std::is_same_v<T, JDelete>) {
            acc = std::move(e.prev);
          }
        },
        std::move(entry));
  }
}

void SpeculativeState::ApplyTo(WorldState& target) const {
  std::vector<Address> addrs;
  addrs.reserve(overlay_.size());
  for (const auto& [addr, acc] : overlay_) addrs.push_back(addr);
  std::sort(addrs.begin(), addrs.end());
  for (const Address& addr : addrs) {
    const OverlayAccount& acc = overlay_.at(addr);
    if (acc.wiped) {
      target.DeleteAccount(addr);
      if (acc.exists) {
        target.CreateAccount(addr);
        target.SetNonce(addr, acc.nonce);
        target.SetBalance(addr, acc.balance);
        target.SetCode(addr, acc.code);
        std::vector<U256> slots;
        for (const auto& [k, v] : acc.storage) slots.push_back(k);
        std::sort(slots.begin(), slots.end());
        for (const U256& k : slots) {
          target.SetStorage(addr, k, acc.storage.at(k));
        }
      }
      continue;
    }
    if (acc.existence_written && acc.exists) target.CreateAccount(addr);
    if (acc.nonce_written) target.SetNonce(addr, acc.nonce);
    if (acc.balance_written) target.SetBalance(addr, acc.balance);
    if (acc.code_written) target.SetCode(addr, acc.code);
    if (!acc.slots_written.empty()) {
      std::vector<U256> slots(acc.slots_written.begin(),
                              acc.slots_written.end());
      std::sort(slots.begin(), slots.end());
      for (const U256& k : slots) target.SetStorage(addr, k, acc.storage.at(k));
    }
  }
  for (const auto& [addr, amount] : fee_credits_) {
    target.AddBalance(addr, amount);
  }
}

}  // namespace onoff::state
