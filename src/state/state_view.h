// The mutable-state interface the EVM and transaction application execute
// against. `WorldState` is the canonical implementation; `SpeculativeState`
// (speculative_state.h) is a copy-on-write overlay used by the optimistic
// parallel executor to run transactions concurrently against a frozen base
// and commit (or discard) their effects afterwards.

#ifndef ONOFFCHAIN_STATE_STATE_VIEW_H_
#define ONOFFCHAIN_STATE_STATE_VIEW_H_

#include <cstdint>

#include "crypto/keccak.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::state {

class StateView {
 public:
  using Snapshot = size_t;

  virtual ~StateView() = default;

  // ---- Account lifecycle ----
  virtual bool Exists(const Address& addr) const = 0;
  virtual void CreateAccount(const Address& addr) = 0;
  virtual void DeleteAccount(const Address& addr) = 0;

  // ---- Balances ----
  virtual U256 GetBalance(const Address& addr) const = 0;
  virtual void AddBalance(const Address& addr, const U256& amount) = 0;
  virtual Status SubBalance(const Address& addr, const U256& amount) = 0;
  Status Transfer(const Address& from, const Address& to, const U256& amount) {
    ONOFF_RETURN_NOT_OK(SubBalance(from, amount));
    AddBalance(to, amount);
    return Status::OK();
  }
  // Miner-fee credit. Semantically AddBalance (and that is the default), but
  // kept distinct so speculative views can record it as a commutative delta:
  // every transaction pays the coinbase, and treating that pay as a plain
  // read-modify-write would serialize the whole block.
  virtual void CreditFee(const Address& addr, const U256& amount) {
    AddBalance(addr, amount);
  }

  // ---- Nonces ----
  virtual uint64_t GetNonce(const Address& addr) const = 0;
  virtual void SetNonce(const Address& addr, uint64_t nonce) = 0;
  void IncrementNonce(const Address& addr) {
    SetNonce(addr, GetNonce(addr) + 1);
  }

  // ---- Code ----
  // The returned reference stays valid until the account's code changes.
  virtual const Bytes& GetCode(const Address& addr) const = 0;
  virtual void SetCode(const Address& addr, Bytes code) = 0;
  // Keccak of the account code. The interpreter keys its code-analysis
  // cache on this, so implementations should memoize it (WorldState caches
  // per account, invalidating on code writes).
  virtual Hash32 GetCodeHash(const Address& addr) const {
    return Keccak256(GetCode(addr));
  }

  // ---- Storage ----
  virtual U256 GetStorage(const Address& addr, const U256& key) const = 0;
  virtual void SetStorage(const Address& addr, const U256& key,
                          const U256& value) = 0;

  // ---- Journaling ----
  // Captures a revert point. Snapshots nest: reverting to an earlier snapshot
  // undoes everything after it.
  virtual Snapshot TakeSnapshot() const = 0;
  virtual void RevertToSnapshot(Snapshot snap) = 0;
  // Drops journal entries (e.g. at the end of a transaction); snapshots taken
  // before this call become invalid.
  virtual void ClearJournal() = 0;
};

}  // namespace onoff::state

#endif  // ONOFFCHAIN_STATE_STATE_VIEW_H_
