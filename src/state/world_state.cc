#include "state/world_state.h"

#include <algorithm>

#include "rlp/rlp.h"
#include "trie/trie.h"

namespace onoff::state {

WorldState WorldState::Clone() const {
  WorldState copy;
  copy.accounts_ = accounts_;
  // The store copy shares every committed trie node with this state
  // (copy-on-write), so cloning costs O(accounts) map copies, not a trie
  // rebuild — and the clone's first StateRoot() only re-hashes whatever was
  // dirty at clone time.
  copy.store_ = store_;
  return copy;
}

const Account* WorldState::Find(const Address& addr) const {
  auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second;
}

Account& WorldState::GetOrCreate(const Address& addr) {
  auto it = accounts_.find(addr);
  if (it != accounts_.end()) return it->second;
  journal_.push_back(AccountCreated{addr});
  store_.MarkAccountDirty(addr);
  return accounts_[addr];
}

bool WorldState::Exists(const Address& addr) const {
  return Find(addr) != nullptr;
}

void WorldState::CreateAccount(const Address& addr) { GetOrCreate(addr); }

void WorldState::DeleteAccount(const Address& addr) {
  auto it = accounts_.find(addr);
  if (it == accounts_.end()) return;
  journal_.push_back(AccountDeleted{addr, std::move(it->second)});
  accounts_.erase(it);
  // Wholesale removal: the committed storage trie can no longer be patched
  // slot-by-slot (a recreated account starts empty).
  store_.MarkAccountReset(addr);
}

U256 WorldState::GetBalance(const Address& addr) const {
  const Account* acc = Find(addr);
  return acc == nullptr ? U256() : acc->balance;
}

void WorldState::AddBalance(const Address& addr, const U256& amount) {
  Account& acc = GetOrCreate(addr);
  journal_.push_back(BalanceChange{addr, acc.balance});
  acc.balance += amount;
  store_.MarkAccountDirty(addr);
}

Status WorldState::SubBalance(const Address& addr, const U256& amount) {
  Account& acc = GetOrCreate(addr);
  if (acc.balance < amount) {
    return Status::FailedPrecondition("insufficient balance");
  }
  journal_.push_back(BalanceChange{addr, acc.balance});
  acc.balance -= amount;
  store_.MarkAccountDirty(addr);
  return Status::OK();
}

void WorldState::SetBalance(const Address& addr, const U256& amount) {
  Account& acc = GetOrCreate(addr);
  journal_.push_back(BalanceChange{addr, acc.balance});
  acc.balance = amount;
  store_.MarkAccountDirty(addr);
}

uint64_t WorldState::GetNonce(const Address& addr) const {
  const Account* acc = Find(addr);
  return acc == nullptr ? 0 : acc->nonce;
}

void WorldState::SetNonce(const Address& addr, uint64_t nonce) {
  Account& acc = GetOrCreate(addr);
  journal_.push_back(NonceChange{addr, acc.nonce});
  acc.nonce = nonce;
  store_.MarkAccountDirty(addr);
}

const Bytes& WorldState::GetCode(const Address& addr) const {
  // Function-local singleton: the returned reference must outlive any
  // caller regardless of translation-unit initialisation order, and must
  // never bind to a temporary for absent accounts.
  static const Bytes kEmptyCode;
  const Account* acc = Find(addr);
  return acc == nullptr ? kEmptyCode : acc->code;
}

void WorldState::SetCode(const Address& addr, Bytes code) {
  Account& acc = GetOrCreate(addr);
  journal_.push_back(CodeChange{addr, std::move(acc.code)});
  acc.code = std::move(code);
  acc.code_hash_cache.reset();
  store_.MarkAccountDirty(addr);
}

Hash32 WorldState::GetCodeHash(const Address& addr) const {
  const Account* acc = Find(addr);
  if (acc == nullptr) {
    static const Hash32 kEmptyHash = Keccak256(Bytes{});
    return kEmptyHash;
  }
  if (!acc->code_hash_cache.has_value()) {
    acc->code_hash_cache = Keccak256(acc->code);
  }
  return *acc->code_hash_cache;
}

U256 WorldState::GetStorage(const Address& addr, const U256& key) const {
  const Account* acc = Find(addr);
  if (acc == nullptr) return U256();
  auto it = acc->storage.find(key);
  return it == acc->storage.end() ? U256() : it->second;
}

void WorldState::SetStorage(const Address& addr, const U256& key,
                            const U256& value) {
  Account& acc = GetOrCreate(addr);
  U256 prev;
  auto it = acc.storage.find(key);
  if (it != acc.storage.end()) prev = it->second;
  journal_.push_back(StorageChange{addr, key, prev});
  if (value.IsZero()) {
    acc.storage.erase(key);
  } else {
    acc.storage[key] = value;
  }
  store_.MarkSlotDirty(addr, key);
}

void WorldState::RevertToSnapshot(Snapshot snap) {
  while (journal_.size() > snap) {
    JournalEntry entry = std::move(journal_.back());
    journal_.pop_back();
    // Reverting is itself a mutation as far as the commitment engine is
    // concerned: the flat maps move back, so the store must re-fold the
    // touched account/slot on the next commit.
    std::visit(
        [this](auto&& e) {
          using T = std::decay_t<decltype(e)>;
          if constexpr (std::is_same_v<T, BalanceChange>) {
            accounts_[e.addr].balance = e.prev;
            store_.MarkAccountDirty(e.addr);
          } else if constexpr (std::is_same_v<T, NonceChange>) {
            accounts_[e.addr].nonce = e.prev;
            store_.MarkAccountDirty(e.addr);
          } else if constexpr (std::is_same_v<T, CodeChange>) {
            Account& acc = accounts_[e.addr];
            acc.code = std::move(e.prev);
            acc.code_hash_cache.reset();
            store_.MarkAccountDirty(e.addr);
          } else if constexpr (std::is_same_v<T, StorageChange>) {
            Account& acc = accounts_[e.addr];
            if (e.prev.IsZero()) {
              acc.storage.erase(e.key);
            } else {
              acc.storage[e.key] = e.prev;
            }
            store_.MarkSlotDirty(e.addr, e.key);
          } else if constexpr (std::is_same_v<T, AccountCreated>) {
            accounts_.erase(e.addr);
            store_.MarkAccountDirty(e.addr);
          } else if constexpr (std::is_same_v<T, AccountDeleted>) {
            accounts_[e.addr] = std::move(e.prev);
            // The restored account may carry arbitrary storage; rebuild its
            // storage trie from the flat map rather than patching.
            store_.MarkAccountReset(e.addr);
          }
        },
        std::move(entry));
  }
}

namespace {

// Per-account storage trie (non-zero slots only).
trie::SecureTrie BuildStorageTrie(const Account& acc) {
  trie::SecureTrie storage_trie;
  for (const auto& [key, value] : acc.storage) {
    if (value.IsZero()) continue;
    Bytes key_bytes = key.ToBytes();
    Bytes value_rlp = rlp::Encode(rlp::Item::Scalar(value));
    storage_trie.Put(key_bytes, value_rlp);
  }
  return storage_trie;
}

// RLP([nonce, balance, storageRoot, codeHash]).
Bytes EncodeAccountRlp(const Account& acc, const Hash32& storage_root) {
  Hash32 code_hash = Keccak256(acc.code);
  std::vector<rlp::Item> fields;
  fields.push_back(rlp::Item::Scalar(acc.nonce));
  fields.push_back(rlp::Item::Scalar(acc.balance));
  fields.push_back(
      rlp::Item::String(BytesView(storage_root.data(), storage_root.size())));
  fields.push_back(
      rlp::Item::String(BytesView(code_hash.data(), code_hash.size())));
  return rlp::Encode(rlp::Item::List(std::move(fields)));
}

trie::SecureTrie BuildStateTrie(
    const std::unordered_map<Address, Account>& accounts) {
  trie::SecureTrie state_trie;
  for (const auto& [addr, acc] : accounts) {
    Hash32 storage_root = BuildStorageTrie(acc).RootHash();
    state_trie.Put(addr.view(), EncodeAccountRlp(acc, storage_root));
  }
  return state_trie;
}

}  // namespace

storage::StateStore::AccountLookup WorldState::StoreLookup() const {
  return [this](const Address& addr) -> std::optional<storage::AccountData> {
    const Account* acc = Find(addr);
    if (acc == nullptr) return std::nullopt;
    storage::AccountData data;
    data.nonce = acc->nonce;
    data.balance = acc->balance;
    data.code_hash = Keccak256(acc->code);
    data.storage = &acc->storage;
    return data;
  };
}

Hash32 WorldState::StateRoot() const {
  return store_.CommitRoot(StoreLookup());
}

Hash32 WorldState::RebuildStateRoot() const {
  return BuildStateTrie(accounts_).RootHash();
}

storage::StateSnapshot WorldState::TakeStateSnapshot() const {
  store_.CommitRoot(StoreLookup());
  return store_.Snapshot();
}

Status WorldState::PersistCommitted(storage::NodeStore& store,
                                    uint64_t height) const {
  store_.CommitRoot(StoreLookup());
  return store_.Persist(store, height);
}

WorldState::Proof WorldState::ProveAccount(const Address& addr) const {
  store_.CommitRoot(StoreLookup());
  Proof proof;
  proof.account_proof = store_.ProveAccount(addr);
  return proof;
}

WorldState::Proof WorldState::ProveStorage(const Address& addr,
                                           const U256& key) const {
  store_.CommitRoot(StoreLookup());
  Proof proof;
  proof.account_proof = store_.ProveAccount(addr);
  if (Exists(addr)) {
    proof.storage_proof = store_.ProveStorage(addr, key);
  }
  return proof;
}

Result<std::optional<WorldState::AccountInfo>> WorldState::VerifyAccountProof(
    const Hash32& state_root, const Address& addr,
    const std::vector<Bytes>& account_proof) {
  ONOFF_ASSIGN_OR_RETURN(
      std::optional<Bytes> record,
      trie::SecureTrie::VerifyProof(state_root, addr.view(), account_proof));
  if (!record.has_value()) return std::optional<AccountInfo>(std::nullopt);
  ONOFF_ASSIGN_OR_RETURN(rlp::Item item, rlp::Decode(*record));
  if (!item.IsList() || item.list().size() != 4) {
    return Status::VerificationFailed("malformed account record in proof");
  }
  AccountInfo info;
  ONOFF_ASSIGN_OR_RETURN(U256 nonce, item.list()[0].AsScalar());
  if (!nonce.FitsUint64()) {
    return Status::VerificationFailed("account nonce out of range");
  }
  info.nonce = nonce.low64();
  ONOFF_ASSIGN_OR_RETURN(info.balance, item.list()[1].AsScalar());
  const Bytes& sr = item.list()[2].string();
  const Bytes& ch = item.list()[3].string();
  if (sr.size() != 32 || ch.size() != 32) {
    return Status::VerificationFailed("account hashes have bad length");
  }
  std::copy(sr.begin(), sr.end(), info.storage_root.begin());
  std::copy(ch.begin(), ch.end(), info.code_hash.begin());
  return std::optional<AccountInfo>(info);
}

Result<U256> WorldState::VerifyStorageProof(const Hash32& storage_root,
                                            const U256& key,
                                            const std::vector<Bytes>& proof) {
  Bytes key_bytes = key.ToBytes();
  ONOFF_ASSIGN_OR_RETURN(
      std::optional<Bytes> value_rlp,
      trie::SecureTrie::VerifyProof(storage_root, key_bytes, proof));
  if (!value_rlp.has_value()) return U256();
  ONOFF_ASSIGN_OR_RETURN(rlp::Item item, rlp::Decode(*value_rlp));
  return item.AsScalar();
}

std::vector<Address> WorldState::Addresses() const {
  std::vector<Address> out;
  out.reserve(accounts_.size());
  for (const auto& [addr, acc] : accounts_) out.push_back(addr);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace onoff::state
