// The world state: accounts (EOAs and contract accounts), balances, nonces,
// code and storage, with journaled snapshot/revert — the mutable substrate
// the EVM executes against.

#ifndef ONOFFCHAIN_STATE_WORLD_STATE_H_
#define ONOFFCHAIN_STATE_WORLD_STATE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "crypto/keccak.h"
#include "state/state_view.h"
#include "storage/node_store.h"
#include "storage/state_store.h"
#include "support/address.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/u256.h"

namespace onoff::state {

// One account record. An EOA has empty code; a contract account (CA) carries
// code and storage.
struct Account {
  uint64_t nonce = 0;
  U256 balance;
  Bytes code;
  std::unordered_map<U256, U256> storage;
  // Lazily computed keccak of `code` (GetCodeHash keys the interpreter's
  // code-analysis cache on it, once per frame). Cleared whenever `code`
  // changes, including journal reverts; safe to copy alongside the code.
  mutable std::optional<Hash32> code_hash_cache;

  bool IsContract() const { return !code.empty(); }
  // Empty per EIP-161: no code, zero nonce, zero balance.
  bool IsEmpty() const {
    return nonce == 0 && balance.IsZero() && code.empty();
  }
};

class WorldState final : public StateView {
 public:
  using Snapshot = StateView::Snapshot;

  WorldState() = default;
  // Deliberately move-only: accidental copies of a whole chain state are
  // almost always bugs. Deliberate copies (pre-block snapshots for the
  // parallel-vs-serial equivalence check) go through Clone().
  WorldState(const WorldState&) = delete;
  WorldState& operator=(const WorldState&) = delete;
  WorldState(WorldState&&) = default;
  WorldState& operator=(WorldState&&) = default;

  // An explicit deep copy of the accounts (the journal does not carry over).
  WorldState Clone() const;

  // ---- Account lifecycle ----
  bool Exists(const Address& addr) const override;
  // Creates the account if absent; returns it either way.
  void CreateAccount(const Address& addr) override;
  // Removes the account entirely (SELFDESTRUCT).
  void DeleteAccount(const Address& addr) override;

  // ---- Balances ----
  U256 GetBalance(const Address& addr) const override;
  void AddBalance(const Address& addr, const U256& amount) override;
  // Fails if the balance is insufficient.
  Status SubBalance(const Address& addr, const U256& amount) override;
  // Absolute write (journaled) — used when committing speculative overlays.
  void SetBalance(const Address& addr, const U256& amount);

  // ---- Nonces ----
  uint64_t GetNonce(const Address& addr) const override;
  void SetNonce(const Address& addr, uint64_t nonce) override;

  // ---- Code ----
  const Bytes& GetCode(const Address& addr) const override;
  void SetCode(const Address& addr, Bytes code) override;
  // Memoized per account (see Account::code_hash_cache).
  Hash32 GetCodeHash(const Address& addr) const override;

  // ---- Storage ----
  U256 GetStorage(const Address& addr, const U256& key) const override;
  void SetStorage(const Address& addr, const U256& key,
                  const U256& value) override;

  // ---- Journaling ----
  // Captures a revert point. Snapshots nest: reverting to an earlier snapshot
  // undoes everything after it.
  Snapshot TakeSnapshot() const override { return journal_.size(); }
  void RevertToSnapshot(Snapshot snap) override;
  // Drops journal entries (e.g. at the end of a transaction); snapshots taken
  // before this call become invalid.
  void ClearJournal() override { journal_.clear(); }

  // ---- Commitment ----
  // keccak state root over the secure Merkle Patricia trie of RLP-encoded
  // accounts ([nonce, balance, storageRoot, codeHash]), exactly as Ethereum.
  // Computed incrementally by the authenticated state store (storage/):
  // only accounts and slots touched since the last call are re-hashed, so
  // per-block cost scales with the write set, not with total state size.
  //
  // NOT concurrently callable on a shared instance: although const, this
  // (like ProveAccount/ProveStorage/TakeStateSnapshot/PersistCommitted)
  // fills the store's commit cache, so concurrent calls data-race. Parallel
  // workers must operate on their own Clone()/overlay, as the parallel
  // executor does.
  Hash32 StateRoot() const;

  // From-scratch rebuild of the same root (the seed implementation) — the
  // differential oracle the incremental engine is checked against. O(total
  // accounts); use only in tests and benches.
  Hash32 RebuildStateRoot() const;

  // A copy-on-write snapshot of the committed state (commits pending
  // changes first): proofs taken from it stay valid against its root even
  // as this state keeps mutating.
  storage::StateSnapshot TakeStateSnapshot() const;

  // Persists all trie nodes new since the last persist into `store` and
  // retains the current root at `height` (commits first). Pruning old
  // heights is the caller's policy (see ChainConfig::state_history_blocks).
  Status PersistCommitted(storage::NodeStore& store, uint64_t height) const;

  // ---- Light-client proofs ----
  // The decoded on-trie account record.
  struct AccountInfo {
    uint64_t nonce = 0;
    U256 balance;
    Hash32 storage_root{};
    Hash32 code_hash{};
  };

  // A Merkle proof of one account and (optionally) one storage slot against
  // the state root. A client holding only a trusted block header can check
  // it without any other state.
  struct Proof {
    std::vector<Bytes> account_proof;  // secure state trie nodes
    std::vector<Bytes> storage_proof;  // secure storage trie nodes (optional)
  };

  // Builds an account (+ storage slot) proof against the CURRENT state.
  Proof ProveAccount(const Address& addr) const;
  Proof ProveStorage(const Address& addr, const U256& key) const;

  // Verifies an account proof. Returns the account record, or nullopt when
  // the proof demonstrates the account does not exist.
  static Result<std::optional<AccountInfo>> VerifyAccountProof(
      const Hash32& state_root, const Address& addr,
      const std::vector<Bytes>& account_proof);
  // Verifies a storage-slot proof against an account's storage root.
  // Returns the slot value (zero when proven absent).
  static Result<U256> VerifyStorageProof(const Hash32& storage_root,
                                         const U256& key,
                                         const std::vector<Bytes>& proof);

  // All addresses with a live account (for inspection/tests).
  std::vector<Address> Addresses() const;

 private:
  struct BalanceChange {
    Address addr;
    U256 prev;
  };
  struct NonceChange {
    Address addr;
    uint64_t prev;
  };
  struct CodeChange {
    Address addr;
    Bytes prev;
  };
  struct StorageChange {
    Address addr;
    U256 key;
    U256 prev;
  };
  struct AccountCreated {
    Address addr;
  };
  struct AccountDeleted {
    Address addr;
    Account prev;
  };
  using JournalEntry =
      std::variant<BalanceChange, NonceChange, CodeChange, StorageChange,
                   AccountCreated, AccountDeleted>;

  const Account* Find(const Address& addr) const;
  Account& GetOrCreate(const Address& addr);
  storage::StateStore::AccountLookup StoreLookup() const;

  std::unordered_map<Address, Account> accounts_;
  mutable std::vector<JournalEntry> journal_;
  // The commitment engine. Reads never consult it; every mutation (and
  // every journal revert) marks the touched account/slot dirty, and
  // StateRoot() folds the dirty set in. Mutable: committing is a cache
  // fill, not a logical state change — which also means the const
  // commitment/proof methods above are NOT thread-safe on a shared
  // instance (see StateRoot()).
  mutable storage::StateStore store_;
};

}  // namespace onoff::state

#endif  // ONOFFCHAIN_STATE_WORLD_STATE_H_
