// onoffchain command-line utility.
//
//   onoffchain_cli keygen <seed>             derive a key + address
//   onoffchain_cli selector <signature>      4-byte ABI selector
//   onoffchain_cli keccak <hex|string>       keccak-256 digest
//   onoffchain_cli asm <file.easm>           assemble to hex bytecode
//   onoffchain_cli disasm <hex>              disassemble bytecode
//   onoffchain_cli sign <seed> <hex>         sign keccak256(data) (v,r,s)
//   onoffchain_cli betting <aliceSeed> <bobSeed> [revealIters]
//       generate the paper's on/off-chain betting pair and the signed copy
//   onoffchain_cli lint [--json] <0xhex|file.easm|file|--bundled>
//       run the static analyzer: CFG + stack/jump verification, worst-case
//       gas bounds, effect classification, storage-access and privacy-taint
//       dataflow. Prints pc (and asm line/label for .easm inputs)
//       diagnostics; exits nonzero on any error finding.
//       --bundled lints every contract this repo generates.
//       --json emits the onoffchain-lint-v1 document on stdout instead of
//       text: per-program function summaries (selector, gas bound, effects,
//       storage reads/writes, schedulability) and diagnostics (code, name,
//       severity, pc, line, selector, message). Exit codes are unchanged.
//   onoffchain_cli simdispute [--sim-seed N] [--sim-latency-ms N]
//                             [--sim-jitter-ms N] [--sim-loss P] [--trials N]
//       run the full protocol with a dishonest loser on the deterministic
//       network simulator and report how the dispute settled
//   onoffchain_cli trace [sim flags] [--chrome-json <path>]
//                        [--trace-json <path>] [--structlog <path>]
//                        [--check-bounds] [--sample-every N]
//       run the bundled dispute scenario with end-to-end causal tracing: one
//       trace id links message-bus delivery, network hops, tx-pool admission,
//       block inclusion, EVM call frames and settlement. Exports Chrome
//       trace-event JSON (chrome://tracing / ui.perfetto.dev), the
//       onoffchain-trace-v1 span dump, and optionally a per-opcode structLog;
//       --check-bounds verifies observed gas against the static analyzer's
//       bounds and exits nonzero on a violation.
//   onoffchain_cli health [sim flags] [--timeseries-json <path>]
//                         [--flightrec-json <path>]
//       run the sim dispute workload with the invariant auditor, flight
//       recorder and time-series sampler all on, then print a one-screen
//       health summary (settlements, violations, recorder pressure, latency
//       quantiles). --timeseries-json writes the onoffchain-timeseries-v1
//       series; --flightrec-json writes an onoffchain-flightrec-v1 triage
//       bundle. Exits nonzero on any invariant violation.
//
// Any command additionally accepts the unified JSON output flag
//   --json <path>|-   JSON output path (alias: --metrics-json; '-' skips the
//                     file)
// dumping the process-global metrics registry to <path> in the
// onoffchain-metrics-v1 schema after the command runs (given more than once,
// the tool exits 2 instead of silently keeping the last value); and
// --log-level <trace|debug|info|warn|error|off> to filter the structured
// diagnostics the library layers emit on stderr.
//
// Everything runs fully offline against the in-repo substrate.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "abi/abi.h"
#include "analysis/analyzer.h"
#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "contracts/synthetic.h"
#include "crypto/keccak.h"
#include "crypto/secp256k1.h"
#include "easm/assembler.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "onoff/protocol.h"
#include "onoff/signed_copy.h"
#include "sim/flags.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/transport.h"
#include "support/log.h"
#include "trace/bounds.h"
#include "trace/structlog.h"
#include "trace/trace.h"

using namespace onoff;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: onoffchain_cli "
               "<keygen|selector|keccak|asm|disasm|sign|betting|lint|"
               "simdispute|trace|health|parexec|storage> args...\n");
  return 2;
}

Bytes ParseHexOrText(const std::string& arg) {
  if (arg.rfind("0x", 0) == 0) {
    auto parsed = FromHex(arg);
    if (parsed.ok()) return *parsed;
  }
  return BytesOf(arg);
}

int CmdKeygen(const std::string& seed) {
  auto key = secp256k1::PrivateKey::FromSeed(seed);
  std::printf("seed:        %s\n", seed.c_str());
  std::printf("private key: 0x%s\n", key.scalar().ToHexFull().c_str());
  auto pub = key.PublicKey();
  Bytes compressed = secp256k1::SerializePoint(pub, /*compressed=*/true);
  std::printf("public key:  0x%s\n", ToHex(compressed).c_str());
  std::printf("address:     %s\n", key.EthAddress().ToHex().c_str());
  return 0;
}

int CmdSelector(const std::string& signature) {
  auto sel = abi::SelectorOf(signature);
  std::printf("%s -> 0x%s\n", signature.c_str(),
              ToHex(BytesView(sel.data(), 4)).c_str());
  return 0;
}

int CmdKeccak(const std::string& arg) {
  Hash32 h = Keccak256(ParseHexOrText(arg));
  std::printf("0x%s\n", ToHex(BytesView(h.data(), h.size())).c_str());
  return 0;
}

int CmdAsm(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ONOFF_LOG(log::Level::kError, "cli", "cannot open %s", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  auto code = easm::Assemble(buf.str());
  if (!code.ok()) {
    ONOFF_LOG(log::Level::kError, "cli", "%s", code.status().ToString().c_str());
    return 1;
  }
  std::printf("0x%s\n", ToHex(*code).c_str());
  return 0;
}

int CmdDisasm(const std::string& hex) {
  auto code = FromHex(hex);
  if (!code.ok()) {
    ONOFF_LOG(log::Level::kError, "cli", "%s", code.status().ToString().c_str());
    return 1;
  }
  std::fputs(easm::Disassemble(*code).c_str(), stdout);
  return 0;
}

int CmdSign(const std::string& seed, const std::string& data_arg) {
  auto key = secp256k1::PrivateKey::FromSeed(seed);
  Bytes data = ParseHexOrText(data_arg);
  Hash32 digest = Keccak256(data);
  auto sig = secp256k1::Sign(digest, key);
  if (!sig.ok()) {
    ONOFF_LOG(log::Level::kError, "cli", "%s", sig.status().ToString().c_str());
    return 1;
  }
  std::printf("signer: %s\n", key.EthAddress().ToHex().c_str());
  std::printf("digest: 0x%s\n", ToHex(BytesView(digest.data(), 32)).c_str());
  std::printf("v: %u\nr: 0x%s\ns: 0x%s\n", sig->v, sig->r.ToHexFull().c_str(),
              sig->s.ToHexFull().c_str());
  return 0;
}

int CmdBetting(const std::string& alice_seed, const std::string& bob_seed,
               uint64_t reveal_iters) {
  auto alice = secp256k1::PrivateKey::FromSeed(alice_seed);
  auto bob = secp256k1::PrivateKey::FromSeed(bob_seed);

  contracts::BettingConfig cfg;
  cfg.alice = alice.EthAddress();
  cfg.bob = bob.EthAddress();
  cfg.deposit_amount = contracts::Ether(1);
  cfg.t1 = 1'000'000'100;
  cfg.t2 = 1'000'000'200;
  cfg.t3 = 1'000'000'300;

  contracts::OffchainConfig off;
  off.alice = cfg.alice;
  off.bob = cfg.bob;
  off.secret_alice = U256(0xa11ce);
  off.secret_bob = U256(0xb0b);
  off.reveal_iterations = reveal_iters;

  auto onchain = contracts::BuildOnChainInit(cfg);
  auto offchain = contracts::BuildOffChainInit(off);
  if (!onchain.ok() || !offchain.ok()) {
    ONOFF_LOG(log::Level::kError, "cli", "generation failed");
    return 1;
  }
  std::printf("participants: %s (alice), %s (bob)\n", cfg.alice.ToHex().c_str(),
              cfg.bob.ToHex().c_str());
  std::printf("on-chain init  (%4zu bytes): 0x%s\n", onchain->size(),
              ToHex(*onchain).c_str());
  std::printf("off-chain init (%4zu bytes): 0x%s\n", offchain->size(),
              ToHex(*offchain).c_str());

  core::SignedCopy copy(*offchain);
  Status audit_a = copy.AddSignature(alice);
  Status audit_b = copy.AddSignature(bob);
  if (!audit_a.ok() || !audit_b.ok()) {
    ONOFF_LOG(log::Level::kError, "cli", "pre-signing audit refused: %s",
              (audit_a.ok() ? audit_b : audit_a).ToString().c_str());
    return 1;
  }
  Hash32 digest = copy.BytecodeHash();
  std::printf("bytecode hash: 0x%s\n",
              ToHex(BytesView(digest.data(), 32)).c_str());
  std::printf("signed copy (%zu bytes RLP): both signatures verify: %s\n",
              copy.Serialize().size(),
              copy.VerifyComplete({cfg.alice, cfg.bob}).ok() ? "yes" : "NO");
  std::printf("native reveal(): winner = %s\n",
              contracts::ComputeWinner(off) ? "bob" : "alice");
  return 0;
}

// Prints one program's analysis report; returns the number of errors.
int PrintAnalysis(const std::string& title,
                  const analysis::AnalysisReport& report,
                  const easm::SourceMap* map = nullptr) {
  std::printf("%s: %zu bytes, %zu blocks, %zu edges, program bound %s\n",
              title.c_str(), report.code_size, report.cfg.blocks.size(),
              report.cfg.EdgeCount(), report.program_bound.ToString().c_str());
  for (const analysis::FunctionReport& fn : report.functions) {
    std::printf("  fn %-44s entry 0x%04x gas <= %-10s%s\n", fn.name.c_str(),
                fn.entry_pc, fn.gas_bound.ToString().c_str(),
                fn.has_loop ? "  (loop)" : "");
  }
  int errors = 0;
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (analysis::IsError(d.code)) ++errors;
    std::printf("  %s\n", analysis::FormatDiagnostic(d, map).c_str());
  }
  return errors;
}

int PrintDeploymentAnalysis(const std::string& title, BytesView init_code,
                            const analysis::AnalysisOptions& options) {
  analysis::DeploymentReport report =
      analysis::AnalyzeDeployment(init_code, options);
  int errors = 0;
  if (report.recognized_deployer) {
    errors += PrintAnalysis(title + " [deployer prologue]", report.init);
    errors += PrintAnalysis(title + " [runtime]", *report.runtime);
    std::printf("  deploy bound (incl. code deposit): %s\n",
                report.DeployGasBound().ToString().c_str());
  } else {
    errors += PrintAnalysis(title, report.init);
  }
  return errors;
}

// ---- lint --json: the onoffchain-lint-v1 document ----

obs::Json GasBoundJson(const analysis::GasBound& bound) {
  return bound.bounded ? obs::Json::Uint(bound.gas) : obs::Json::Null();
}

obs::Json DiagnosticJson(const analysis::Diagnostic& d,
                         const easm::SourceMap* map) {
  obs::Json j = obs::Json::Object();
  j.Set("code", obs::Json::Str(analysis::DiagCodeId(d.code)));
  j.Set("name", obs::Json::Str(analysis::DiagCodeName(d.code)));
  j.Set("severity",
        obs::Json::Str(analysis::IsError(d.code) ? "error" : "warning"));
  j.Set("pc", obs::Json::Uint(d.pc));
  int line = map != nullptr ? map->LineAt(d.pc) : -1;
  j.Set("line", line >= 0 ? obs::Json::Int(line) : obs::Json::Null());
  j.Set("selector", d.HasSelector()
                        ? obs::Json::Uint(static_cast<uint64_t>(d.selector))
                        : obs::Json::Null());
  j.Set("message", obs::Json::Str(d.message));
  return j;
}

obs::Json AccessJson(const analysis::AccessSummary& access) {
  obs::Json j = obs::Json::Object();
  j.Set("reads", obs::Json::Str(access.reads.ToString()));
  j.Set("writes", obs::Json::Str(access.writes.ToString()));
  j.Set("effects", obs::Json::Str(analysis::EffectsToString(access.effects)));
  j.Set("external_reads", obs::Json::Bool(access.external_reads));
  j.Set("schedulable", obs::Json::Bool(access.StaticallySchedulable()));
  return j;
}

// Appends one program entry to `programs`; returns its error count.
int CollectAnalysisJson(obs::Json* programs, const std::string& title,
                        const analysis::AnalysisReport& report,
                        const easm::SourceMap* map = nullptr) {
  obs::Json j = obs::Json::Object();
  j.Set("title", obs::Json::Str(title));
  j.Set("code_size", obs::Json::Uint(report.code_size));
  j.Set("blocks", obs::Json::Uint(report.cfg.blocks.size()));
  j.Set("edges", obs::Json::Uint(report.cfg.EdgeCount()));
  j.Set("gas_bound", GasBoundJson(report.program_bound));
  j.Set("access", AccessJson(report.program_access));
  obs::Json fns = obs::Json::Array();
  for (const analysis::FunctionReport& fn : report.functions) {
    obs::Json f = obs::Json::Object();
    f.Set("selector", obs::Json::Uint(fn.selector));
    f.Set("name", obs::Json::Str(fn.name));
    f.Set("entry_pc", obs::Json::Uint(fn.entry_pc));
    f.Set("gas_bound", GasBoundJson(fn.gas_bound));
    f.Set("has_loop", obs::Json::Bool(fn.has_loop));
    f.Set("access", AccessJson(fn.access));
    fns.Push(std::move(f));
  }
  j.Set("functions", std::move(fns));
  int errors = 0;
  obs::Json diags = obs::Json::Array();
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (analysis::IsError(d.code)) ++errors;
    diags.Push(DiagnosticJson(d, map));
  }
  j.Set("diagnostics", std::move(diags));
  j.Set("errors", obs::Json::Int(errors));
  programs->Push(std::move(j));
  return errors;
}

int CollectDeploymentJson(obs::Json* programs, const std::string& title,
                          BytesView init_code,
                          const analysis::AnalysisOptions& options) {
  analysis::DeploymentReport report =
      analysis::AnalyzeDeployment(init_code, options);
  int errors = 0;
  if (report.recognized_deployer) {
    errors += CollectAnalysisJson(programs, title + " [deployer prologue]",
                                  report.init);
    errors += CollectAnalysisJson(programs, title + " [runtime]",
                                  *report.runtime);
  } else {
    errors += CollectAnalysisJson(programs, title, report.init);
  }
  return errors;
}

int EmitLintJson(obs::Json programs, int errors) {
  obs::Json doc = obs::Json::Object();
  doc.Set("schema", obs::Json::Str("onoffchain-lint-v1"));
  doc.Set("programs", std::move(programs));
  doc.Set("errors", obs::Json::Int(errors));
  std::printf("%s\n", doc.Dump().c_str());
  return errors == 0 ? 0 : 1;
}

uint32_t SelectorWord(std::string_view signature) {
  abi::Selector sel = abi::SelectorOf(signature);
  return (uint32_t{sel[0]} << 24) | (uint32_t{sel[1]} << 16) |
         (uint32_t{sel[2]} << 8) | uint32_t{sel[3]};
}

// Options naming every signature, declaring `light` bounded-below-limit and
// `priv` state-leak-free.
analysis::AnalysisOptions PolicyFor(const std::vector<std::string>& names,
                                    const std::vector<std::string>& light,
                                    const std::vector<std::string>& priv) {
  analysis::AnalysisOptions options;
  for (const std::string& sig : names) {
    options.function_names[SelectorWord(sig)] = sig;
  }
  for (const std::string& sig : light) {
    options.light_selectors.push_back(SelectorWord(sig));
  }
  for (const std::string& sig : priv) {
    options.private_selectors.push_back(SelectorWord(sig));
  }
  return options;
}

int CmdLintBundled(bool json) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  int errors = 0;
  obs::Json programs = obs::Json::Array();

  contracts::BettingConfig cfg;
  cfg.alice = alice.EthAddress();
  cfg.bob = bob.EthAddress();
  cfg.deposit_amount = contracts::Ether(1);
  cfg.t1 = 1'000'000'100;
  cfg.t2 = 1'000'000'200;
  cfg.t3 = 1'000'000'300;
  contracts::OffchainConfig off;
  off.alice = cfg.alice;
  off.bob = cfg.bob;
  off.reveal_iterations = 10;
  auto betting_on = contracts::BuildOnChainInit(cfg);
  auto betting_off = contracts::BuildOffChainInit(off);
  if (!betting_on.ok() || !betting_off.ok()) {
    ONOFF_LOG(log::Level::kError, "cli", "betting generation failed");
    return 1;
  }
  const std::string deploy_sig =
      "deployVerifiedInstance(bytes,uint8,bytes32,bytes32,uint8,bytes32,"
      "bytes32)";
  analysis::AnalysisOptions betting_on_policy = PolicyFor(
      {"deposit()", "refundRoundOne()", "refundRoundTwo()", "reassign()",
       deploy_sig, "enforceDisputeResolution(bool)"},
      {"deposit()", "refundRoundOne()", "refundRoundTwo()", "reassign()",
       "enforceDisputeResolution(bool)"},
      {});
  analysis::AnalysisOptions betting_off_policy =
      PolicyFor({"getWinner()", "returnDisputeResolution(address)"}, {},
                {"getWinner()"});
  if (json) {
    errors += CollectDeploymentJson(&programs, "betting on-chain",
                                    *betting_on, betting_on_policy);
    errors += CollectDeploymentJson(&programs, "betting off-chain",
                                    *betting_off, betting_off_policy);
  } else {
    errors += PrintDeploymentAnalysis("betting on-chain", *betting_on,
                                      betting_on_policy);
    errors += PrintDeploymentAnalysis("betting off-chain", *betting_off,
                                      betting_off_policy);
  }

  contracts::SyntheticConfig synth;
  auto whole = contracts::BuildWholeInit(synth);
  auto hybrid_on = contracts::BuildHybridOnChainInit(synth);
  auto hybrid_off = contracts::BuildHybridOffChainInit(synth);
  if (!whole.ok() || !hybrid_on.ok() || !hybrid_off.ok()) {
    ONOFF_LOG(log::Level::kError, "cli", "synthetic generation failed");
    return 1;
  }
  if (json) {
    errors += CollectDeploymentJson(&programs, "synthetic whole", *whole, {});
    errors += CollectDeploymentJson(&programs, "synthetic hybrid on-chain",
                                    *hybrid_on, {});
    errors += CollectDeploymentJson(&programs, "synthetic hybrid off-chain",
                                    *hybrid_off, {});
    return EmitLintJson(std::move(programs), errors);
  }
  errors += PrintDeploymentAnalysis("synthetic whole", *whole, {});
  errors += PrintDeploymentAnalysis("synthetic hybrid on-chain", *hybrid_on, {});
  errors +=
      PrintDeploymentAnalysis("synthetic hybrid off-chain", *hybrid_off, {});

  std::printf("%d error(s) across bundled contracts\n", errors);
  return errors == 0 ? 0 : 1;
}

int CmdLint(const std::string& arg, bool json) {
  if (arg == "--bundled") return CmdLintBundled(json);

  // .easm files are assembled with a source map so diagnostics carry
  // line/label positions; everything else is hex (inline or in a file).
  if (arg.size() > 5 && arg.rfind(".easm") == arg.size() - 5) {
    std::ifstream in(arg);
    if (!in) {
      ONOFF_LOG(log::Level::kError, "cli", "cannot open %s", arg.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    easm::SourceMap map;
    auto code = easm::AssembleWithMap(buf.str(), &map);
    if (!code.ok()) {
      ONOFF_LOG(log::Level::kError, "cli", "%s", code.status().ToString().c_str());
      return 1;
    }
    analysis::AnalysisReport report = analysis::AnalyzeProgram(*code);
    if (json) {
      obs::Json programs = obs::Json::Array();
      int errors = CollectAnalysisJson(&programs, arg, report, &map);
      return EmitLintJson(std::move(programs), errors);
    }
    return PrintAnalysis(arg, report, &map) == 0 ? 0 : 1;
  }

  std::string hex = arg;
  if (hex.rfind("0x", 0) != 0) {
    std::ifstream in(arg);
    if (!in) {
      ONOFF_LOG(log::Level::kError, "cli", "cannot open %s", arg.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    hex = buf.str();
    while (!hex.empty() && (hex.back() == '\n' || hex.back() == '\r' ||
                            hex.back() == ' ')) {
      hex.pop_back();
    }
  }
  auto code = FromHex(hex);
  if (!code.ok()) {
    ONOFF_LOG(log::Level::kError, "cli", "%s", code.status().ToString().c_str());
    return 1;
  }
  if (json) {
    obs::Json programs = obs::Json::Array();
    int errors = CollectDeploymentJson(&programs, arg, *code, {});
    return EmitLintJson(std::move(programs), errors);
  }
  return PrintDeploymentAnalysis(arg, *code, {}) == 0 ? 0 : 1;
}

int CmdSimDispute(const sim::SimFlags& flags) {
  std::printf("sim: seed=%llu latency=%llums jitter=%llums loss=%.2f "
              "trials=%llu\n",
              static_cast<unsigned long long>(flags.seed),
              static_cast<unsigned long long>(flags.latency_ms),
              static_cast<unsigned long long>(flags.jitter_ms), flags.loss,
              static_cast<unsigned long long>(flags.trials));
  uint64_t resolved = 0;
  for (uint64_t trial = 0; trial < flags.trials; ++trial) {
    auto alice = secp256k1::PrivateKey::FromSeed("alice");
    auto bob = secp256k1::PrivateKey::FromSeed("bob");
    chain::Blockchain chain;
    chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
    chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
    core::MessageBus bus;
    contracts::OffchainConfig offchain;
    offchain.secret_alice = U256(0xa11ce);
    offchain.secret_bob = U256(0xb0b);
    offchain.reveal_iterations = 20;

    sim::Scheduler sched;
    uint64_t state = flags.seed;
    (void)sim::SplitMix64(&state);
    state ^= trial;
    sim::SimTransport transport(&sched, sim::SplitMix64(&state));
    // Faults apply to the participant->chain links (the race the dispute
    // path cares about); the off-chain bus keeps identity links so every
    // trial reaches the dispute stage instead of aborting unsigned.
    sim::LinkConfig cfg;
    cfg.latency_ms = flags.latency_ms;
    cfg.jitter_ms = flags.jitter_ms;
    cfg.loss = flags.loss;
    transport.SetLink(alice.EthAddress().ToHex(), "chain", cfg);
    transport.SetLink(bob.EthAddress().ToHex(), "chain", cfg);

    core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                   contracts::Ether(1));
    protocol.BindSimulation(&sched, &transport);
    core::Behavior dishonest;
    dishonest.admit_loss = false;
    auto report = protocol.Run(dishonest, dishonest);
    if (!report.ok()) {
      std::printf("trial %llu: run failed: %s\n",
                  static_cast<unsigned long long>(trial),
                  report.status().ToString().c_str());
      continue;
    }
    bool ok = report->settlement == core::Settlement::kDisputed &&
              report->correct_payout;
    if (ok) ++resolved;
    std::printf("trial %llu: settlement=%s payout=%s dispute_ms=%llu "
                "gas=%llu revealed=%zu delivered=%llu dropped=%llu\n",
                static_cast<unsigned long long>(trial),
                core::SettlementName(report->settlement),
                report->correct_payout ? "correct" : "WRONG",
                static_cast<unsigned long long>(report->dispute_ms),
                static_cast<unsigned long long>(report->TotalGas()),
                report->private_bytes_revealed,
                static_cast<unsigned long long>(transport.stats().delivered),
                static_cast<unsigned long long>(
                    transport.stats().dropped_total()));
  }
  std::printf("resolved %llu/%llu disputes within the %llums challenge "
              "period\n",
              static_cast<unsigned long long>(resolved),
              static_cast<unsigned long long>(flags.trials),
              static_cast<unsigned long long>(
                  core::ProtocolTiming{}.challenge_period_ms));
  return 0;
}

// ---- health: the soak-triage one-screen summary ----

struct HealthFlags {
  std::string timeseries_json;
  std::string flightrec_json;
};

// Strips --timeseries-json/--flightrec-json ("--flag value" and
// "--flag=value") from argv.
HealthFlags HealthFlagsFromArgs(int* argc, char** argv) {
  HealthFlags flags;
  auto take_value = [&](int i, const char* name, std::string* out) {
    std::string arg = argv[i];
    std::string prefix = std::string(name) + "=";
    if (arg == name && i + 1 < *argc) {
      *out = argv[i + 1];
      return 2;
    }
    if (arg.rfind(prefix, 0) == 0) {
      *out = arg.substr(prefix.size());
      return 1;
    }
    return 0;
  };
  int out_i = 0;
  for (int i = 0; i < *argc;) {
    int eaten = take_value(i, "--timeseries-json", &flags.timeseries_json);
    if (eaten == 0) {
      eaten = take_value(i, "--flightrec-json", &flags.flightrec_json);
    }
    if (eaten == 0) {
      argv[out_i++] = argv[i++];
    } else {
      i += eaten;
    }
  }
  *argc = out_i;
  return flags;
}

int CmdHealth(const sim::SimFlags& flags, const HealthFlags& health) {
  // One chain across every trial, with all three observability subsystems
  // on: the auditor watches each block and settlement, the chain-owned
  // flight recorder captures the event stream, and the sampler snapshots
  // the registry at block commits on the virtual clock.
  chain::ChainConfig config;
  config.audit_invariants = "all";
  config.flight_recorder_events = 4096;
  config.timeseries_interval_ms = 200;
  chain::Blockchain chain(config);

  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain.FundAccount(alice.EthAddress(), contracts::Ether(1000));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(1000));
  core::MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 20;

  std::map<std::string, uint64_t> settlements;
  uint64_t run_failures = 0;
  for (uint64_t trial = 0; trial < flags.trials; ++trial) {
    sim::Scheduler sched;
    uint64_t state = flags.seed;
    (void)sim::SplitMix64(&state);
    state ^= trial;
    sim::SimTransport transport(&sched, sim::SplitMix64(&state));
    sim::LinkConfig cfg;
    cfg.latency_ms = flags.latency_ms;
    cfg.jitter_ms = flags.jitter_ms;
    cfg.loss = flags.loss;
    transport.SetLink(alice.EthAddress().ToHex(), "chain", cfg);
    transport.SetLink(bob.EthAddress().ToHex(), "chain", cfg);

    core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                   contracts::Ether(1));
    protocol.BindSimulation(&sched, &transport);
    // Alternate the optimistic and dispute paths so both settlement
    // boundaries (and both invariant families) exercise.
    core::Behavior behavior;
    behavior.admit_loss = trial % 2 == 0;
    auto report = protocol.Run(behavior, behavior);
    if (!report.ok()) {
      ++run_failures;
      ONOFF_LOG(log::Level::kWarn, "cli", "health trial %llu failed: %s",
                static_cast<unsigned long long>(trial),
                report.status().ToString().c_str());
      continue;
    }
    ++settlements[core::SettlementName(report->settlement)];
  }

  std::printf("=== onoffchain health ===\n");
  std::printf("workload: %llu sim dispute trials (seed=%llu latency=%llums "
              "jitter=%llums loss=%.2f), %llu failed\n",
              static_cast<unsigned long long>(flags.trials),
              static_cast<unsigned long long>(flags.seed),
              static_cast<unsigned long long>(flags.latency_ms),
              static_cast<unsigned long long>(flags.jitter_ms), flags.loss,
              static_cast<unsigned long long>(run_failures));
  std::printf("settlements:");
  for (const auto& [name, count] : settlements) {
    std::printf(" %s=%llu", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  std::printf("chain: height %llu, %llu gas paid, %zu txs pending\n",
              static_cast<unsigned long long>(chain.Height()),
              static_cast<unsigned long long>(chain.TotalGasUsed()),
              chain.PendingCount());

  const chain::ChainAuditor* auditor = chain.auditor();
  uint64_t violations = auditor != nullptr ? auditor->violations() : 0;
  std::printf("auditor: %zu invariants armed, %llu violations  [%s]\n",
              auditor != nullptr ? auditor->invariant_count() : 0,
              static_cast<unsigned long long>(violations),
              violations == 0 ? "OK" : "FAIL");
  if (auditor != nullptr) {
    for (const obs::ViolationReport& report :
         chain.auditor()->sink().Reports()) {
      std::printf("  violation: %s\n", report.ToString().c_str());
    }
  }

  obs::FlightRecorder* recorder = obs::FlightRecorder::Global();
  if (recorder != nullptr) {
    std::printf("flight recorder: %llu events recorded, %llu overwritten "
                "(ring %zu)\n",
                static_cast<unsigned long long>(recorder->events_recorded()),
                static_cast<unsigned long long>(recorder->events_dropped()),
                recorder->config().capacity);
  }

  const obs::TimeseriesSampler* series = chain.timeseries();
  if (series != nullptr && series->samples() > 0) {
    std::printf("timeseries: %zu samples @ %llums virtual",
                series->samples(),
                static_cast<unsigned long long>(
                    chain.config().timeseries_interval_ms));
    if (auto blocks = series->LatestCounter("chain.blocks_mined")) {
      std::printf(", blocks_mined=%llu",
                  static_cast<unsigned long long>(*blocks));
    }
    if (auto p99 = series->LatestQuantile("chain.mine_block_us", 0.99)) {
      std::printf(", mine_block p99=%.0fus", *p99);
    }
    std::printf("\n");
  } else {
    std::printf("timeseries: no samples (metrics disabled?)\n");
  }

  int rc = violations == 0 && run_failures == 0 ? 0 : 1;
  if (!health.timeseries_json.empty()) {
    if (series == nullptr) {
      ONOFF_LOG(log::Level::kWarn, "cli",
                "timeseries sampler is off; not writing %s",
                health.timeseries_json.c_str());
    } else {
      Status st = series->WriteJsonFile(health.timeseries_json);
      if (!st.ok()) {
        ONOFF_LOG(log::Level::kError, "cli", "%s", st.ToString().c_str());
        rc = 1;
      }
    }
  }
  if (!health.flightrec_json.empty() && recorder != nullptr) {
    Status st = recorder->DumpTriageBundle(health.flightrec_json,
                                           "health-export", nullptr);
    if (!st.ok()) {
      ONOFF_LOG(log::Level::kError, "cli", "%s", st.ToString().c_str());
      rc = 1;
    }
  }
  return rc;
}

struct TraceFlags {
  std::string chrome_json;
  std::string trace_json;
  std::string structlog_json;
  bool check_bounds = false;
  uint64_t sample_every = 1;
};

// Strips --chrome-json/--trace-json/--structlog/--check-bounds/--sample-every
// from argv (both "--flag value" and "--flag=value" spellings).
TraceFlags TraceFlagsFromArgs(int* argc, char** argv) {
  TraceFlags flags;
  auto take_value = [&](int* i, const char* name, std::string* out) {
    std::string arg = argv[*i];
    std::string prefix = std::string(name) + "=";
    if (arg == name && *i + 1 < *argc) {
      *out = argv[*i + 1];
      return 2;
    }
    if (arg.rfind(prefix, 0) == 0) {
      *out = arg.substr(prefix.size());
      return 1;
    }
    return 0;
  };
  int out_i = 0;
  for (int i = 0; i < *argc;) {
    std::string value;
    int eaten = take_value(&i, "--chrome-json", &flags.chrome_json);
    if (eaten == 0) eaten = take_value(&i, "--trace-json", &flags.trace_json);
    if (eaten == 0) {
      eaten = take_value(&i, "--structlog", &flags.structlog_json);
    }
    if (eaten == 0 && (eaten = take_value(&i, "--sample-every", &value)) > 0) {
      flags.sample_every = std::strtoull(value.c_str(), nullptr, 10);
      if (flags.sample_every == 0) flags.sample_every = 1;
    }
    if (eaten == 0 && std::strcmp(argv[i], "--check-bounds") == 0) {
      flags.check_bounds = true;
      eaten = 1;
    }
    if (eaten == 0) {
      argv[out_i++] = argv[i++];
    } else {
      i += eaten;
    }
  }
  *argc = out_i;
  return flags;
}

int WriteJsonFile(const obs::Json& json, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    ONOFF_LOG(log::Level::kError, "cli", "cannot open %s for writing",
              path.c_str());
    return 1;
  }
  out << json.Dump(/*pretty=*/true) << '\n';
  return out.good() ? 0 : 1;
}

// Indented causal tree of one trace's spans, roots first.
void PrintSpanTree(const std::vector<trace::Span>& spans) {
  std::map<uint64_t, std::vector<const trace::Span*>> children;
  for (const trace::Span& s : spans) children[s.parent_span_id].push_back(&s);
  std::function<void(uint64_t, int)> walk = [&](uint64_t parent, int depth) {
    auto it = children.find(parent);
    if (it == children.end()) return;
    for (const trace::Span* s : it->second) {
      std::string line(static_cast<size_t>(depth) * 2, ' ');
      line += s->instant ? "* " : "- ";
      line += s->name;
      std::printf("%-48s %10llu us", line.c_str(),
                  static_cast<unsigned long long>(s->start_us));
      if (!s->instant) {
        std::printf("  +%llu us", static_cast<unsigned long long>(s->dur_us));
      }
      for (const auto& [key, value] : s->args) {
        std::string shown = value;
        if (shown.size() > 18) shown = shown.substr(0, 18) + "..";
        std::printf("  %s=%s", key.c_str(), shown.c_str());
      }
      std::printf("\n");
      walk(s->span_id, depth + 1);
    }
  };
  walk(0, 0);
}

int CmdTrace(const sim::SimFlags& sim_flags, const TraceFlags& flags) {
  trace::TracerConfig tracer_config;
  tracer_config.sample_every = flags.sample_every;
  trace::Tracer tracer(tracer_config);
  trace::Tracer* previous = trace::Tracer::InstallGlobal(&tracer);

  trace::StructLogTracer structlog;
  trace::GasBoundsChecker bounds;

  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
  if (!flags.structlog_json.empty()) chain.set_step_tracer(&structlog);
  if (flags.check_bounds) chain.set_bounds_checker(&bounds);

  core::MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 20;

  sim::Scheduler sched;
  uint64_t state = sim_flags.seed;
  sim::SimTransport transport(&sched, sim::SplitMix64(&state));
  sim::LinkConfig cfg;
  cfg.latency_ms = sim_flags.latency_ms;
  cfg.jitter_ms = sim_flags.jitter_ms;
  cfg.loss = sim_flags.loss;
  transport.SetLink(alice.EthAddress().ToHex(), "chain", cfg);
  transport.SetLink(bob.EthAddress().ToHex(), "chain", cfg);

  core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                 contracts::Ether(1));
  protocol.BindSimulation(&sched, &transport);
  core::Behavior dishonest;
  dishonest.admit_loss = false;
  auto report = protocol.Run(dishonest, dishonest);
  trace::Tracer::InstallGlobal(previous);
  if (!report.ok()) {
    ONOFF_LOG(log::Level::kError, "cli", "traced run failed: %s",
              report.status().ToString().c_str());
    return 1;
  }

  std::printf("traced dispute run: settlement=%s payout=%s gas=%llu\n",
              core::SettlementName(report->settlement),
              report->correct_payout ? "correct" : "WRONG",
              static_cast<unsigned long long>(report->TotalGas()));
  std::printf("spans: %llu completed, %llu dropped (ring %zu), traces: %llu\n",
              static_cast<unsigned long long>(tracer.spans_completed()),
              static_cast<unsigned long long>(tracer.spans_dropped()),
              tracer.config().ring_capacity,
              static_cast<unsigned long long>(tracer.traces_started()));

  std::vector<trace::Span> spans = tracer.Snapshot();
  std::printf("\nspan tree (virtual time):\n");
  PrintSpanTree(spans);

  std::printf("\nreceipts:\n");
  for (const chain::Block& block : chain.blocks()) {
    for (const chain::Transaction& tx : block.transactions) {
      auto receipt = chain.GetReceipt(tx.Hash());
      if (receipt.ok()) std::printf("%s\n", DescribeReceipt(*receipt).c_str());
    }
  }

  int rc = 0;
  if (!flags.trace_json.empty()) {
    rc |= WriteJsonFile(tracer.ToJson(), flags.trace_json);
  }
  if (!flags.chrome_json.empty()) {
    rc |= WriteJsonFile(tracer.ToChromeTrace(), flags.chrome_json);
  }
  if (!flags.structlog_json.empty()) {
    std::printf("structLog: %llu steps (%llu dropped), %zu frames\n",
                static_cast<unsigned long long>(structlog.steps_seen()),
                static_cast<unsigned long long>(structlog.records_dropped()),
                structlog.frames().size());
    rc |= WriteJsonFile(structlog.ToJson(), flags.structlog_json);
  }
  if (flags.check_bounds) {
    std::printf("gas bounds: %llu checks, %llu violations\n",
                static_cast<unsigned long long>(bounds.checks()),
                static_cast<unsigned long long>(bounds.violations()));
    if (bounds.violations() > 0) rc = 1;
  }
  return rc;
}

// Demo/diagnostic for the optimistic parallel executor: mines `blocks`
// blocks of `senders` value transfers under ExecMode::kParallel with the
// serial-equivalence assertion enabled, then reports the speculation
// counters. Exits non-zero if any block fails to pack fully (the
// equivalence assertion aborts on its own if parallel diverges).
int CmdParexec(size_t senders, uint64_t blocks) {
  chain::ChainConfig config;
  config.exec_mode = chain::ExecMode::kParallel;
  config.assert_parallel_equivalence = true;
  config.max_txs_per_block = senders;
  chain::Blockchain bc(config);

  std::vector<secp256k1::PrivateKey> keys;
  for (size_t i = 0; i < senders; ++i) {
    keys.push_back(
        secp256k1::PrivateKey::FromSeed("parexec-" + std::to_string(i)));
    bc.FundAccount(keys.back().EthAddress(), contracts::Ether(10));
  }
  uint64_t last_block = 0;
  for (uint64_t b = 0; b < blocks; ++b) {
    for (size_t i = 0; i < senders; ++i) {
      // Half the senders pay a shared recipient (conflicting), half pay
      // their own (disjoint), so both commit paths run.
      Address to = i % 2 == 0 ? keys[0].EthAddress()
                              : keys[(i + 1) % senders].EthAddress();
      auto hash = bc.SendTransaction(keys[i], to, U256(1), {}, 21'000);
      if (!hash.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     hash.status().ToString().c_str());
        return 1;
      }
    }
    const chain::Block& block = bc.MineBlock();
    last_block = block.header.number;
    if (block.transactions.size() != senders) {
      std::fprintf(stderr, "block %llu packed %zu/%zu txs\n",
                   static_cast<unsigned long long>(block.header.number),
                   block.transactions.size(), senders);
      return 1;
    }
  }
  std::printf("mined %llu parallel blocks x %zu txs, final state root %s\n",
              static_cast<unsigned long long>(last_block), senders,
              ToHex0x(BytesView(bc.blocks().back().header.state_root.data(),
                                32))
                  .c_str());
  if (obs::Registry* reg = obs::Registry::Global()) {
    std::printf("  speculation waves:  %llu\n",
                static_cast<unsigned long long>(
                    reg->CounterValue("chain.parallel.waves")));
    std::printf("  txs speculated:     %llu\n",
                static_cast<unsigned long long>(
                    reg->CounterValue("chain.parallel.speculated")));
    std::printf("  committed verbatim: %llu\n",
                static_cast<unsigned long long>(
                    reg->CounterValue("chain.parallel.committed")));
    std::printf("  conflicts:          %llu\n",
                static_cast<unsigned long long>(
                    reg->CounterValue("chain.parallel.conflicts")));
    std::printf("  re-executed:        %llu\n",
                static_cast<unsigned long long>(
                    reg->CounterValue("chain.parallel.reexecuted")));
  }
  std::printf("serial-equivalence assertion held for every block\n");
  return 0;
}

// Demo/diagnostic for the persistent authenticated state store: mines
// `blocks` blocks of balance churn with persistence into `db_path`, prints
// the node-store growth per block, demonstrates a historical lookup against
// a pruned-out vs retained root, and compacts the log. Run it twice on the
// same path to see the log replay restore the store.
int CmdStorage(const std::string& db_path, uint64_t blocks,
               uint64_t history) {
  chain::ChainConfig config;
  config.persist_state = true;
  config.state_db_path = db_path;
  config.state_history_blocks = history;
  chain::Blockchain bc(config);
  if (bc.node_store() == nullptr) {
    std::fprintf(stderr, "node store failed to open at %s\n", db_path.c_str());
    return 1;
  }
  std::printf("node store: %s (replayed %zu live nodes, %zu roots)\n",
              db_path.empty() ? "<in-memory>" : db_path.c_str(),
              bc.node_store()->live_nodes(), bc.node_store()->retained_roots());

  auto alice = secp256k1::PrivateKey::FromSeed("storage-alice");
  bc.FundAccount(alice.EthAddress(), contracts::Ether(1000));
  std::vector<Hash32> roots;
  std::printf("%6s %12s %12s %12s %10s\n", "block", "live nodes", "roots",
              "pruned", "log bytes");
  for (uint64_t b = 0; b < blocks; ++b) {
    auto hash = bc.SendTransaction(
        alice, secp256k1::PrivateKey::FromSeed("b" + std::to_string(b))
                   .EthAddress(),
        U256(1), {}, 21'000);
    if (!hash.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   hash.status().ToString().c_str());
      return 1;
    }
    roots.push_back(bc.MineBlock().header.state_root);
    std::printf("%6llu %12zu %12zu %12llu %10llu\n",
                static_cast<unsigned long long>(bc.Height()),
                bc.node_store()->live_nodes(),
                bc.node_store()->retained_roots(),
                static_cast<unsigned long long>(
                    bc.node_store()->pruned_total()),
                static_cast<unsigned long long>(bc.node_store()->file_bytes()));
  }

  // Historical read: the sender's account under the newest retained root.
  auto current = bc.node_store()->LookupSecure(roots.back(),
                                               alice.EthAddress().view());
  if (!current.ok() || !current->has_value()) {
    std::fprintf(stderr, "historical lookup under latest root failed\n");
    return 1;
  }
  std::printf("latest root %s: account record %zu bytes\n",
              ToHex0x(BytesView(roots.back().data(), 8)).c_str(),
              (*current)->size());
  if (roots.size() > history) {
    bool pruned_gone = !bc.node_store()->LookupSecure(
        roots.front(), alice.EthAddress().view()).ok();
    std::printf("oldest root %s: %s (outside the %llu-block window)\n",
                ToHex0x(BytesView(roots.front().data(), 8)).c_str(),
                pruned_gone ? "pruned" : "still readable",
                static_cast<unsigned long long>(history));
  }
  return 0;
}

int Dispatch(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "keygen" && argc == 3) return CmdKeygen(argv[2]);
  if (cmd == "selector" && argc == 3) return CmdSelector(argv[2]);
  if (cmd == "keccak" && argc == 3) return CmdKeccak(argv[2]);
  if (cmd == "asm" && argc == 3) return CmdAsm(argv[2]);
  if (cmd == "disasm" && argc == 3) return CmdDisasm(argv[2]);
  if (cmd == "sign" && argc == 4) return CmdSign(argv[2], argv[3]);
  if (cmd == "lint" && argc == 3) return CmdLint(argv[2], /*json=*/false);
  if (cmd == "lint" && argc == 4 && std::strcmp(argv[2], "--json") == 0) {
    return CmdLint(argv[3], /*json=*/true);
  }
  if (cmd == "parexec" && argc >= 2 && argc <= 4) {
    size_t senders = argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 8;
    uint64_t blocks = argc == 4 ? std::strtoull(argv[3], nullptr, 10) : 4;
    if (senders < 2 || blocks == 0) return Usage();
    return CmdParexec(senders, blocks);
  }
  if (cmd == "betting" && (argc == 4 || argc == 5)) {
    return CmdBetting(argv[2], argv[3],
                      argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 10);
  }
  if (cmd == "storage" && argc >= 2 && argc <= 5) {
    std::string db_path = argc >= 3 ? argv[2] : "";
    uint64_t blocks = argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 8;
    uint64_t history = argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 4;
    if (blocks == 0) return Usage();
    return CmdStorage(db_path, blocks, history);
  }
  return Usage();
}

int DispatchWithSimFlags(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "simdispute") == 0) {
    sim::SimFlags defaults;
    defaults.trials = 3;
    sim::SimFlags flags = sim::SimFlagsFromArgs(&argc, argv, defaults);
    if (argc != 2) return Usage();  // leftover unknown arguments
    return CmdSimDispute(flags);
  }
  if (argc >= 2 && std::strcmp(argv[1], "trace") == 0) {
    TraceFlags trace_flags = TraceFlagsFromArgs(&argc, argv);
    sim::SimFlags defaults;
    defaults.trials = 1;
    sim::SimFlags sim_flags = sim::SimFlagsFromArgs(&argc, argv, defaults);
    if (argc != 2) return Usage();  // leftover unknown arguments
    return CmdTrace(sim_flags, trace_flags);
  }
  if (argc >= 2 && std::strcmp(argv[1], "health") == 0) {
    HealthFlags health_flags = HealthFlagsFromArgs(&argc, argv);
    sim::SimFlags defaults;
    defaults.trials = 4;
    sim::SimFlags sim_flags = sim::SimFlagsFromArgs(&argc, argv, defaults);
    if (argc != 2) return Usage();  // leftover unknown arguments
    return CmdHealth(sim_flags, health_flags);
  }
  return Dispatch(argc, argv);
}

}  // namespace

int main(int argc, char** argv) {
  log::SetLevel(log::LevelFromArgs(&argc, argv));
  // `lint --json` selects the lint document format; mask it from the
  // generic --json/--metrics-json extraction (which would treat the next
  // argument as the metrics output path). --metrics-json still works.
  bool lint_json = argc >= 3 && std::strcmp(argv[1], "lint") == 0 &&
                   std::strcmp(argv[2], "--json") == 0;
  if (lint_json) argv[2] = const_cast<char*>("--lint-json");
  std::string metrics_path = obs::JsonPathFromArgsOrExit(&argc, argv, "");
  if (lint_json) argv[2] = const_cast<char*>("--json");
  int rc = DispatchWithSimFlags(argc, argv);
  if (!metrics_path.empty()) {
    obs::Registry* registry = obs::Registry::Global();
    if (registry == nullptr) {
      ONOFF_LOG(log::Level::kWarn, "cli", "metrics are disabled; not writing %s",
              metrics_path.c_str());
    } else {
      Status st = registry->WriteJsonFile(metrics_path);
      if (!st.ok()) {
        ONOFF_LOG(log::Level::kError, "cli", "%s", st.ToString().c_str());
        if (rc == 0) rc = 1;
      }
    }
  }
  return rc;
}
