// The paper's running example end-to-end (Table I): Alice and Bob bet 1
// ether on a private predicate. This example runs the full four-stage
// protocol twice — once with an honest loser (optimistic settlement, nothing
// private revealed) and once with a dishonest loser (dispute: the signed
// off-chain contract is revealed and a verified instance forces the true
// result), printing a stage-by-stage narrative with gas numbers.
//
// Build & run:  ./build/examples/betting_dispute

#include <cstdio>

#include "onoff/protocol.h"

using namespace onoff;
using core::Behavior;
using core::BettingProtocol;
using core::MessageBus;
using core::ProtocolReport;
using core::Settlement;
using core::Stage;

namespace {

void PrintReport(const char* title, const ProtocolReport& report) {
  std::printf("\n=== %s ===\n", title);
  std::printf("settlement: %s, bob_won: %s, correct payout: %s\n",
              core::SettlementName(report.settlement),
              report.bob_won ? "yes" : "no",
              report.correct_payout ? "yes" : "no");
  std::printf("%-18s %12s %10s %8s %10s %10s\n", "stage", "gas", "on-bytes",
              "txs", "off-msgs", "off-bytes");
  for (int i = 0; i < core::kNumStages; ++i) {
    const auto& s = report.stages[i];
    std::printf("%-18s %12llu %10zu %8d %10zu %10zu\n",
                core::StageName(static_cast<Stage>(i)),
                static_cast<unsigned long long>(s.gas_used), s.onchain_bytes,
                s.transactions, s.offchain_messages, s.offchain_bytes);
  }
  std::printf("total gas: %llu | on-chain bytes: %zu | private bytes "
              "revealed: %zu\n",
              static_cast<unsigned long long>(report.TotalGas()),
              report.TotalOnchainBytes(), report.private_bytes_revealed);
}

ProtocolReport RunScenario(bool loser_admits) {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
  MessageBus bus;

  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);  // Alice's private input
  offchain.secret_bob = U256(0xb0b);      // Bob's private input
  offchain.reveal_iterations = 50;        // weight of the private reveal()

  BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                           contracts::Ether(1));
  Behavior behavior;
  behavior.admit_loss = loser_admits;
  auto report = protocol.Run(behavior, behavior);
  if (!report.ok()) {
    std::printf("protocol error: %s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  return *report;
}

}  // namespace

int main() {
  std::printf("On/off-chain betting between Alice and Bob (Table I rules)\n");
  std::printf("Both deposit 1 ether; the bet is decided by the private\n");
  std::printf("reveal() function that exists only in the off-chain contract.\n");

  ProtocolReport honest = RunScenario(/*loser_admits=*/true);
  PrintReport("Scenario 1: honest loser calls reassign() (optimistic)",
              honest);

  ProtocolReport disputed = RunScenario(/*loser_admits=*/false);
  PrintReport("Scenario 2: dishonest loser goes silent (dispute/resolve)",
              disputed);

  std::printf("\nDispute overhead: %+lld gas, %+lld on-chain bytes; the\n",
              static_cast<long long>(disputed.TotalGas()) -
                  static_cast<long long>(honest.TotalGas()),
              static_cast<long long>(disputed.TotalOnchainBytes()) -
                  static_cast<long long>(honest.TotalOnchainBytes()));
  std::printf("optimistic path revealed %zu private bytes, the dispute path "
              "%zu.\n",
              honest.private_bytes_revealed, disputed.private_bytes_revealed);
  return 0;
}
