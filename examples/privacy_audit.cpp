// Privacy audit: what does an outside observer actually see on-chain?
//
// Runs the betting contract three ways — all-on-chain, hybrid/optimistic and
// hybrid/disputed — and audits the public record: deployed code bytes,
// calldata bytes, and whether the private betting secrets appear anywhere in
// the public data.
//
// Build & run:  ./build/examples/privacy_audit

#include <algorithm>
#include <cstdio>
#include <vector>

#include "chain/blockchain.h"
#include "contracts/betting.h"
#include "onoff/protocol.h"

using namespace onoff;

namespace {

// Collects every byte that hit the chain: all tx calldata + all code.
Bytes PublicBytes(const chain::Blockchain& chain) {
  Bytes all;
  for (const auto& block : chain.blocks()) {
    for (const auto& tx : block.transactions) {
      Append(all, tx.data);
    }
  }
  for (const Address& addr : chain.state().Addresses()) {
    Append(all, chain.state().GetCode(addr));
  }
  return all;
}

bool Contains(const Bytes& haystack, const Bytes& needle) {
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

struct Audit {
  size_t public_bytes;
  bool secrets_visible;
  uint64_t total_gas;
};

Audit AuditChain(const chain::Blockchain& chain,
                 const contracts::OffchainConfig& offchain) {
  Bytes pub = PublicBytes(chain);
  // The secrets are 32-byte words; their PUSH immediates embed the
  // minimal-width big-endian form, so search for that.
  Bytes sa = offchain.secret_alice.ToBigEndianTrimmed();
  Bytes sb = offchain.secret_bob.ToBigEndianTrimmed();
  return Audit{pub.size(), Contains(pub, sa) && Contains(pub, sb),
               chain.TotalGasUsed()};
}

}  // namespace

int main() {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");

  contracts::OffchainConfig offchain;
  offchain.alice = alice.EthAddress();
  offchain.bob = bob.EthAddress();
  offchain.secret_alice = U256(0xa11ce5ec3e7ull);  // "private topic" inputs
  offchain.secret_bob = U256(0xb0b5ec3e7ull);
  // Heavy enough that executing reveal() on-chain visibly dominates the
  // hybrid model's one-time escrow-deployment overhead.
  offchain.reveal_iterations = 20'000;

  std::printf("Private inputs under audit: alice=%s bob=%s\n\n",
              offchain.secret_alice.ToHex().c_str(),
              offchain.secret_bob.ToHex().c_str());

  // --- Model A: all-on-chain (the whole contract, reveal() included, is
  // deployed publicly; calling reveal() is public too). We approximate the
  // whole contract by deploying the off-chain part on the public chain.
  Audit all_on_chain;
  {
    chain::Blockchain chain;
    chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
    auto init = contracts::BuildOffChainInit(offchain);
    auto deploy = chain.Execute(alice, std::nullopt, U256(), *init, 5'000'000);
    chain.Execute(alice, deploy->contract_address, U256(),
                  contracts::GetWinnerCalldata(), 2'000'000);
    all_on_chain = AuditChain(chain, offchain);
  }

  // --- Model B: hybrid, honest participants (optimistic path).
  Audit optimistic;
  {
    chain::Blockchain chain;
    chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
    chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
    core::MessageBus bus;
    core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                   contracts::Ether(1));
    auto report = protocol.Run(core::Behavior{}, core::Behavior{});
    if (!report.ok() || report->settlement != core::Settlement::kOptimistic) {
      std::printf("unexpected optimistic-run failure\n");
      return 1;
    }
    optimistic = AuditChain(chain, offchain);
  }

  // --- Model C: hybrid with a dishonest loser (dispute path).
  Audit disputed;
  {
    chain::Blockchain chain;
    chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
    chain.FundAccount(bob.EthAddress(), contracts::Ether(10));
    core::MessageBus bus;
    core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                   contracts::Ether(1));
    core::Behavior dishonest;
    dishonest.admit_loss = false;
    auto report = protocol.Run(dishonest, dishonest);
    if (!report.ok() || report->settlement != core::Settlement::kDisputed) {
      std::printf("unexpected dispute-run failure\n");
      return 1;
    }
    disputed = AuditChain(chain, offchain);
  }

  std::printf("%-28s %14s %16s %12s\n", "model", "public bytes",
              "secrets visible", "miner gas");
  auto row = [](const char* name, const Audit& a) {
    std::printf("%-28s %14zu %16s %12llu\n", name, a.public_bytes,
                a.secrets_visible ? "YES" : "no",
                static_cast<unsigned long long>(a.total_gas));
  };
  row("all-on-chain", all_on_chain);
  row("hybrid (optimistic)", optimistic);
  row("hybrid (disputed)", disputed);

  std::printf(
      "\nTakeaway: the optimistic hybrid path keeps the private inputs off\n"
      "the public record entirely; a dispute trades that privacy for\n"
      "enforcement, exactly as the paper describes.\n");
  return 0;
}
