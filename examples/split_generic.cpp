// Splitting YOUR OWN contract with the generic framework.
//
// This example defines a three-function "escrowed auction settlement"
// contract, tags the settlement computation heavy/private, and lets the
// framework generate the on/off-chain pair. It then walks both result paths:
// the optimistic submit -> challenge-period -> finalize flow, and a dispute
// where a false submission is overridden by the verified instance.
//
// Build & run:  ./build/examples/split_generic

#include <cstdio>

#include "chain/blockchain.h"
#include "contracts/betting.h"  // Ether()
#include "evm/opcodes.h"
#include "onoff/split_contract.h"

using namespace onoff;
using contracts::ContractWriter;
using core::FunctionDef;
using core::SignedCopy;
using core::SplitConfig;
using evm::Opcode;

int main() {
  auto alice = secp256k1::PrivateKey::FromSeed("seller");
  auto bob = secp256k1::PrivateKey::FromSeed("buyer");
  chain::Blockchain chain;
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  chain.FundAccount(bob.EthAddress(), contracts::Ether(10));

  // ---- 1. Describe the whole contract ----
  // recordBid(): light — writes a bid marker on-chain.
  // ackDelivery(): light — writes a delivery marker on-chain.
  // settlePrice(): heavy/private — computes the final clearing price from
  //                parameters the parties don't want public.
  std::vector<FunctionDef> functions;
  functions.push_back({"recordBid()", /*heavy=*/false, [](ContractWriter& w) {
                         w.PushU(U256(1));
                         w.SStore(U256(10));
                       }});
  functions.push_back({"ackDelivery()", /*heavy=*/false, [](ContractWriter& w) {
                         w.PushU(U256(1));
                         w.SStore(U256(11));
                       }});
  functions.push_back({"settlePrice()", /*heavy=*/true, [](ContractWriter& w) {
                         // A stand-in for private pricing logic: hash the
                         // (secret) reserve and bid, take the low 16 bits.
                         w.PushU(U256(0x5ec2e7));  // secret reserve price
                         w.PushU(U256(0x00));
                         w.b().Op(Opcode::MSTORE);
                         w.PushU(U256(0xb1d));     // secret bid
                         w.PushU(U256(0x20));
                         w.b().Op(Opcode::MSTORE);
                         w.PushU(U256(0x40));
                         w.PushU(U256(0x00));
                         w.b().Op(Opcode::SHA3);
                         w.PushU(U256(0xffff));
                         w.b().Op(Opcode::AND);
                       }});

  // ---- 2. Split it ----
  SplitConfig config;
  config.participants = {alice.EthAddress(), bob.EthAddress()};
  config.challenge_period_seconds = 120;
  auto split = core::SplitContract(config, functions);
  if (!split.ok()) {
    std::printf("split failed: %s\n", split.status().ToString().c_str());
    return 1;
  }
  std::printf("on-chain contract:  %4zu bytes runtime, functions:\n",
              split->onchain_runtime.size());
  for (const auto& sig : split->onchain_signatures) {
    std::printf("    %s\n", sig.c_str());
  }
  std::printf("off-chain contract: %4zu bytes runtime, functions:\n",
              split->offchain_runtime.size());
  for (const auto& sig : split->offchain_signatures) {
    std::printf("    %s\n", sig.c_str());
  }

  // ---- 3. Deploy on-chain part; sign the off-chain part ----
  auto deploy = chain.Execute(alice, std::nullopt, U256(),
                              split->onchain_init, 5'000'000);
  Address onchain = deploy->contract_address;
  std::printf("\ndeployed on-chain part at %s (gas %llu)\n",
              onchain.ToHex().c_str(),
              static_cast<unsigned long long>(deploy->gas_used));

  SignedCopy copy(split->offchain_init);
  copy.AddSignature(alice);
  copy.AddSignature(bob);
  std::printf("signed copy: %zu bytecode bytes, %zu signatures\n",
              copy.bytecode().size(), copy.signature_count());

  // ---- 4. Light functions run on-chain as usual ----
  chain.Execute(alice, onchain, U256(), abi::EncodeCall("recordBid()", {}),
                200'000);
  chain.Execute(bob, onchain, U256(), abi::EncodeCall("ackDelivery()", {}),
                200'000);

  // ---- 5. Heavy function runs off-chain, locally ----
  chain::Blockchain local;  // the buyer's private EVM
  local.FundAccount(bob.EthAddress(), contracts::Ether(1));
  auto local_deploy = local.Execute(bob, std::nullopt, U256(),
                                    split->offchain_init, 5'000'000);
  auto price_res = local.CallReadOnly(bob.EthAddress(),
                                      local_deploy->contract_address,
                                      abi::EncodeCall("settlePrice()", {}));
  U256 true_price = U256::FromBigEndianTruncating(price_res.output);
  std::printf("\noff-chain settlePrice() computed locally: %s\n",
              true_price.ToDecimal().c_str());

  // ---- 6a. Optimistic path: submit + finalize after challenge period ----
  auto submit = chain.Execute(alice, onchain,
                              U256(), core::SubmitResultCalldata(true_price),
                              300'000);
  std::printf("submitResult: gas %llu\n",
              static_cast<unsigned long long>(submit->gas_used));
  chain.AdvanceTime(config.challenge_period_seconds);
  auto finalize = chain.Execute(bob, onchain, U256(),
                                core::FinalizeResultCalldata(), 300'000);
  std::printf("finalizeResult: gas %llu, final result on-chain: %s\n",
              static_cast<unsigned long long>(finalize->gas_used),
              chain.GetStorage(onchain, U256(core::split_slots::kFinalResult))
                  .ToDecimal()
                  .c_str());

  // ---- 6b. Dispute path on a fresh instance: false submit + challenge ----
  std::printf("\n--- dispute demo on a second deployment ---\n");
  auto deploy2 = chain.Execute(bob, std::nullopt, U256(), split->onchain_init,
                               5'000'000);
  Address onchain2 = deploy2->contract_address;
  chain.Execute(alice, onchain2, U256(),
                core::SubmitResultCalldata(U256(1)),  // a lie
                300'000);
  std::printf("alice submitted FALSE result 1\n");
  auto challenge_data = core::DeployVerifiedInstanceCalldata(copy, config);
  auto challenge = chain.Execute(bob, onchain2, U256(), *challenge_data,
                                 6'000'000);
  std::printf("bob challenged with the signed copy: gas %llu\n",
              static_cast<unsigned long long>(challenge->gas_used));
  Address instance = Address::FromWord(chain.GetStorage(
      onchain2, U256(core::split_slots::kDeployedAddr)));
  auto resolve = chain.Execute(
      bob, instance, U256(), core::ReturnDisputeResolutionCalldata(onchain2),
      6'000'000);
  std::printf("verified instance enforced the result: gas %llu\n",
              static_cast<unsigned long long>(resolve->gas_used));
  std::printf("final result on-chain: %s (the truth, not alice's 1)\n",
              chain.GetStorage(onchain2, U256(core::split_slots::kFinalResult))
                  .ToDecimal()
                  .c_str());
  return 0;
}
