// Quickstart: spin up the simulated Ethereum chain, deploy a contract
// written in EVM assembly, call it, and read the receipt — the minimal tour
// of the substrate underneath the on/off-chain framework.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "chain/blockchain.h"
#include "crypto/secp256k1.h"
#include "easm/assembler.h"
#include "contracts/betting.h"  // Ether()

using namespace onoff;  // examples favor brevity

int main() {
  // 1. A deterministic single-process "testnet" (the stand-in for Kovan).
  chain::Blockchain chain;

  // 2. An externally owned account with a real secp256k1 key.
  auto alice = secp256k1::PrivateKey::FromSeed("quickstart-alice");
  chain.FundAccount(alice.EthAddress(), contracts::Ether(10));
  std::printf("Alice's address: %s\n", alice.EthAddress().ToHex().c_str());

  // 3. A counter contract in EVM assembly: every call adds 1 to slot 0.
  //    (Init code deploys the 12-byte runtime.)
  auto init = easm::Assemble(R"(
    PUSH1 0x0a               ; runtime size
    PUSH @runtime PUSH1 0x01 ADD
    PUSH1 0x00
    CODECOPY
    PUSH1 0x0a PUSH1 0x00 RETURN
    runtime:
    DB 0x60005460010160005500
  )");
  // runtime disassembles to: PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 0 SSTORE STOP
  if (!init.ok()) {
    std::printf("assembly error: %s\n", init.status().ToString().c_str());
    return 1;
  }

  // 4. Deploy it with a signed transaction; the chain mines a block.
  auto deploy = chain.Execute(alice, std::nullopt, U256(), *init, 500'000);
  if (!deploy.ok() || !deploy->success) {
    std::printf("deployment failed\n");
    return 1;
  }
  Address counter = deploy->contract_address;
  std::printf("Deployed counter at %s (gas: %llu)\n", counter.ToHex().c_str(),
              static_cast<unsigned long long>(deploy->gas_used));

  // 5. Call it three times and watch storage move.
  for (int i = 0; i < 3; ++i) {
    auto receipt = chain.Execute(alice, counter, U256(), {}, 100'000);
    std::printf("  call %d: success=%d gas=%llu counter=%s\n", i + 1,
                receipt->success,
                static_cast<unsigned long long>(receipt->gas_used),
                chain.GetStorage(counter, U256(0)).ToDecimal().c_str());
  }

  // 6. Inspect the chain itself.
  std::printf("Chain height: %llu, state root: %s\n",
              static_cast<unsigned long long>(chain.Height()),
              ToHex(BytesView(chain.state().StateRoot().data(), 32)).c_str());
  return 0;
}
