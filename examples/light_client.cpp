// Light-client verification: trusting the betting outcome with nothing but
// block headers and Merkle proofs.
//
// A mobile participant who cannot replay the chain still wants certainty
// that (a) the on-chain betting contract is resolved, (b) the pot actually
// moved, and (c) the recorded verified-instance address is what the header
// commits to. This example runs a disputed bet, then plays the light
// client: it takes the latest header's state root, asks a full node for
// account/storage proofs, and verifies them locally. It also re-validates
// the whole chain the way a syncing full node would (chain/validator).
//
// Build & run:  ./build/examples/light_client

#include <cstdio>

#include "chain/validator.h"
#include "onoff/protocol.h"

using namespace onoff;

int main() {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::Blockchain chain;
  chain::GenesisAlloc alloc = {{alice.EthAddress(), contracts::Ether(10)},
                               {bob.EthAddress(), contracts::Ether(10)}};
  for (const auto& [addr, amount] : alloc) chain.FundAccount(addr, amount);
  core::MessageBus bus;

  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 100;

  core::BettingProtocol protocol(&chain, &bus, alice, bob, offchain,
                                 contracts::Ether(1));
  core::Behavior dishonest;
  dishonest.admit_loss = false;  // force the dispute path
  auto report = protocol.Run(dishonest, dishonest);
  if (!report.ok() || report->settlement != core::Settlement::kDisputed) {
    std::printf("setup failed\n");
    return 1;
  }
  Address contract = report->onchain_contract;
  std::printf("bet resolved via dispute; on-chain contract: %s\n",
              contract.ToHex().c_str());

  // ---- The light client's view: one trusted header ----
  const chain::BlockHeader& header = chain.blocks().back().header;
  std::printf("\nlight client trusts header #%llu, state root %s...\n",
              static_cast<unsigned long long>(header.number),
              ToHex(BytesView(header.state_root.data(), 8)).c_str());

  // The "full node" serves proofs (in reality: over the network).
  auto resolved_proof = chain.state().ProveStorage(
      contract, U256(contracts::betting_slots::kResolved));
  auto instance_proof = chain.state().ProveStorage(
      contract, U256(contracts::betting_slots::kDeployedAddr));

  // Verify: contract account exists under the header's root.
  auto account = state::WorldState::VerifyAccountProof(
      header.state_root, contract, resolved_proof.account_proof);
  if (!account.ok() || !account->has_value()) {
    std::printf("account proof FAILED\n");
    return 1;
  }
  std::printf("account proof ok: contract balance = %s wei (drained: %s)\n",
              (*account)->balance.ToDecimal().c_str(),
              (*account)->balance.IsZero() ? "yes" : "no");

  // Verify: the `resolved` slot is 1 under the account's storage root.
  auto resolved = state::WorldState::VerifyStorageProof(
      (*account)->storage_root, U256(contracts::betting_slots::kResolved),
      resolved_proof.storage_proof);
  auto instance = state::WorldState::VerifyStorageProof(
      (*account)->storage_root, U256(contracts::betting_slots::kDeployedAddr),
      instance_proof.storage_proof);
  if (!resolved.ok() || !instance.ok()) {
    std::printf("storage proof FAILED\n");
    return 1;
  }
  std::printf("storage proofs ok: resolved=%s, verified instance=%s\n",
              resolved->ToDecimal().c_str(),
              Address::FromWord(*instance).ToHex().c_str());

  // A forged proof (say, claiming the contract is unresolved) is caught.
  auto forged = resolved_proof.storage_proof;
  if (!forged.empty()) {
    forged.back()[forged.back().size() / 2] ^= 0x01;
    auto bad = state::WorldState::VerifyStorageProof(
        (*account)->storage_root, U256(contracts::betting_slots::kResolved),
        forged);
    std::printf("tampered proof rejected: %s\n",
                bad.ok() ? "NO (!!)" : bad.status().ToString().c_str());
  }

  // ---- The full node's view: replay everything ----
  Status sync = chain::VerifyChain(chain, alloc);
  std::printf("\nfull-node replay of %zu blocks: %s\n", chain.blocks().size(),
              sync.ToString().c_str());
  return sync.ok() ? 0 : 1;
}
