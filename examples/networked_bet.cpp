// The whole stack at once: the betting protocol running over the simulated
// P2P network. Alice and Bob interact with the producer node; two replica
// nodes validate every block by replay; after settlement, anyone can audit
// the outcome from any replica — or from nothing but a header and proofs.
//
// Build & run:  ./build/examples/networked_bet

#include <cstdio>

#include "chain/network.h"
#include "onoff/protocol.h"

using namespace onoff;

int main() {
  auto alice = secp256k1::PrivateKey::FromSeed("alice");
  auto bob = secp256k1::PrivateKey::FromSeed("bob");
  chain::GenesisAlloc alloc = {{alice.EthAddress(), contracts::Ether(10)},
                               {bob.EthAddress(), contracts::Ether(10)}};

  // One producer (the PoA authority), two verifying replicas.
  chain::Node producer("producer", chain::ChainConfig{}, alloc);
  chain::Node replica1("replica1", chain::ChainConfig{}, alloc);
  chain::Node replica2("replica2", chain::ChainConfig{}, alloc);
  chain::Network net;
  net.AddNode(&producer);
  net.AddNode(&replica1);
  net.AddNode(&replica2);

  // Run the paper's protocol against the producer's chain (a dispute run,
  // so every stage executes).
  core::MessageBus bus;
  contracts::OffchainConfig offchain;
  offchain.secret_alice = U256(0xa11ce);
  offchain.secret_bob = U256(0xb0b);
  offchain.reveal_iterations = 100;
  core::BettingProtocol protocol(&producer.chain(), &bus, alice, bob, offchain,
                                 contracts::Ether(1));
  core::Behavior dishonest;
  dishonest.admit_loss = false;
  auto report = protocol.Run(dishonest, dishonest);
  if (!report.ok()) {
    std::printf("protocol failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("protocol settled: %s (winner %s), producer height %llu\n",
              core::SettlementName(report->settlement),
              report->bob_won ? "bob" : "alice",
              static_cast<unsigned long long>(producer.Height()));

  // Gossip the produced history to the replicas; each block is verified by
  // full replay before acceptance.
  Status sync1 = replica1.SyncFrom(producer.chain().blocks());
  Status sync2 = replica2.SyncFrom(producer.chain().blocks());
  std::printf("replica1 sync: %s (height %llu, rejected %zu)\n",
              sync1.ToString().c_str(),
              static_cast<unsigned long long>(replica1.Height()),
              replica1.rejected_blocks());
  std::printf("replica2 sync: %s (height %llu, rejected %zu)\n",
              sync2.ToString().c_str(),
              static_cast<unsigned long long>(replica2.Height()),
              replica2.rejected_blocks());
  if (!sync1.ok() || !sync2.ok()) return 1;

  // Every node agrees on the final state bit-for-bit.
  bool heads_match = replica1.HeadHash() == producer.HeadHash() &&
                     replica2.HeadHash() == producer.HeadHash();
  std::printf("all heads identical: %s\n", heads_match ? "yes" : "NO");

  // An auditor asks a *replica* (not the producer) about the settlement.
  Address contract = report->onchain_contract;
  U256 resolved = replica1.chain().GetStorage(
      contract, U256(contracts::betting_slots::kResolved));
  std::printf("replica1 reports contract resolved = %s, pot balance = %s\n",
              resolved.ToDecimal().c_str(),
              replica1.chain().GetBalance(contract).ToDecimal().c_str());

  // A byzantine producer cannot sneak a different history past the
  // replicas: flip one transferred wei and the block bounces.
  std::vector<chain::Block> forged = producer.chain().blocks();
  for (auto& block : forged) {
    if (!block.transactions.empty()) {
      block.transactions[0].value += U256(1);
      break;
    }
  }
  chain::Node fresh("fresh", chain::ChainConfig{}, alloc);
  Status bad = fresh.SyncFrom(forged);
  std::printf("forged history rejected by a fresh node: %s\n",
              bad.ok() ? "NO (!!)" : bad.ToString().c_str());
  return heads_match && !bad.ok() ? 0 : 1;
}
