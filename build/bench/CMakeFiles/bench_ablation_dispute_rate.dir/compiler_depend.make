# Empty compiler generated dependencies file for bench_ablation_dispute_rate.
# This may be replaced when dependencies are built.
