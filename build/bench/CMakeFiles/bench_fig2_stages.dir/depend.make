# Empty dependencies file for bench_fig2_stages.
# This may be replaced when dependencies are built.
