file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy_bytes.dir/bench_privacy_bytes.cpp.o"
  "CMakeFiles/bench_privacy_bytes.dir/bench_privacy_bytes.cpp.o.d"
  "bench_privacy_bytes"
  "bench_privacy_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
