# Empty compiler generated dependencies file for bench_privacy_bytes.
# This may be replaced when dependencies are built.
