file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nparty.dir/bench_ablation_nparty.cpp.o"
  "CMakeFiles/bench_ablation_nparty.dir/bench_ablation_nparty.cpp.o.d"
  "bench_ablation_nparty"
  "bench_ablation_nparty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nparty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
