# Empty compiler generated dependencies file for bench_ablation_nparty.
# This may be replaced when dependencies are built.
