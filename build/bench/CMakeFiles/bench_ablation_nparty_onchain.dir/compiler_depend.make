# Empty compiler generated dependencies file for bench_ablation_nparty_onchain.
# This may be replaced when dependencies are built.
