file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nparty_onchain.dir/bench_ablation_nparty_onchain.cpp.o"
  "CMakeFiles/bench_ablation_nparty_onchain.dir/bench_ablation_nparty_onchain.cpp.o.d"
  "bench_ablation_nparty_onchain"
  "bench_ablation_nparty_onchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nparty_onchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
