file(REMOVE_RECURSE
  "CMakeFiles/onoff_evm.dir/evm.cc.o"
  "CMakeFiles/onoff_evm.dir/evm.cc.o.d"
  "CMakeFiles/onoff_evm.dir/opcodes.cc.o"
  "CMakeFiles/onoff_evm.dir/opcodes.cc.o.d"
  "CMakeFiles/onoff_evm.dir/precompiles.cc.o"
  "CMakeFiles/onoff_evm.dir/precompiles.cc.o.d"
  "libonoff_evm.a"
  "libonoff_evm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_evm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
