# Empty dependencies file for onoff_evm.
# This may be replaced when dependencies are built.
