file(REMOVE_RECURSE
  "libonoff_evm.a"
)
