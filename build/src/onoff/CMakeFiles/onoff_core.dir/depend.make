# Empty dependencies file for onoff_core.
# This may be replaced when dependencies are built.
