file(REMOVE_RECURSE
  "CMakeFiles/onoff_core.dir/message_bus.cc.o"
  "CMakeFiles/onoff_core.dir/message_bus.cc.o.d"
  "CMakeFiles/onoff_core.dir/protocol.cc.o"
  "CMakeFiles/onoff_core.dir/protocol.cc.o.d"
  "CMakeFiles/onoff_core.dir/signed_copy.cc.o"
  "CMakeFiles/onoff_core.dir/signed_copy.cc.o.d"
  "CMakeFiles/onoff_core.dir/split_contract.cc.o"
  "CMakeFiles/onoff_core.dir/split_contract.cc.o.d"
  "libonoff_core.a"
  "libonoff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
