
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/onoff/message_bus.cc" "src/onoff/CMakeFiles/onoff_core.dir/message_bus.cc.o" "gcc" "src/onoff/CMakeFiles/onoff_core.dir/message_bus.cc.o.d"
  "/root/repo/src/onoff/protocol.cc" "src/onoff/CMakeFiles/onoff_core.dir/protocol.cc.o" "gcc" "src/onoff/CMakeFiles/onoff_core.dir/protocol.cc.o.d"
  "/root/repo/src/onoff/signed_copy.cc" "src/onoff/CMakeFiles/onoff_core.dir/signed_copy.cc.o" "gcc" "src/onoff/CMakeFiles/onoff_core.dir/signed_copy.cc.o.d"
  "/root/repo/src/onoff/split_contract.cc" "src/onoff/CMakeFiles/onoff_core.dir/split_contract.cc.o" "gcc" "src/onoff/CMakeFiles/onoff_core.dir/split_contract.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/onoff_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/onoff_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/rlp/CMakeFiles/onoff_rlp.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/onoff_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/contracts/CMakeFiles/onoff_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/abi/CMakeFiles/onoff_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/easm/CMakeFiles/onoff_easm.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/onoff_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/onoff_state.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/onoff_trie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
