file(REMOVE_RECURSE
  "libonoff_core.a"
)
