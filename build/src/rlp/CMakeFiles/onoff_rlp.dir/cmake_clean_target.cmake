file(REMOVE_RECURSE
  "libonoff_rlp.a"
)
