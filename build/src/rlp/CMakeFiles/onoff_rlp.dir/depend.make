# Empty dependencies file for onoff_rlp.
# This may be replaced when dependencies are built.
