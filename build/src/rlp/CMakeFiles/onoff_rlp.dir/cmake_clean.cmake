file(REMOVE_RECURSE
  "CMakeFiles/onoff_rlp.dir/rlp.cc.o"
  "CMakeFiles/onoff_rlp.dir/rlp.cc.o.d"
  "libonoff_rlp.a"
  "libonoff_rlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_rlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
