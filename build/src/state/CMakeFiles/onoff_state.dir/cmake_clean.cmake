file(REMOVE_RECURSE
  "CMakeFiles/onoff_state.dir/world_state.cc.o"
  "CMakeFiles/onoff_state.dir/world_state.cc.o.d"
  "libonoff_state.a"
  "libonoff_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
