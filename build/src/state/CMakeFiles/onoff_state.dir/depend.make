# Empty dependencies file for onoff_state.
# This may be replaced when dependencies are built.
