file(REMOVE_RECURSE
  "libonoff_state.a"
)
