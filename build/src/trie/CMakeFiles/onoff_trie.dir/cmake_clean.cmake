file(REMOVE_RECURSE
  "CMakeFiles/onoff_trie.dir/trie.cc.o"
  "CMakeFiles/onoff_trie.dir/trie.cc.o.d"
  "libonoff_trie.a"
  "libonoff_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
