# Empty compiler generated dependencies file for onoff_trie.
# This may be replaced when dependencies are built.
