file(REMOVE_RECURSE
  "libonoff_trie.a"
)
