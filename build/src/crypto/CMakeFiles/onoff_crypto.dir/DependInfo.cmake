
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/keccak.cc" "src/crypto/CMakeFiles/onoff_crypto.dir/keccak.cc.o" "gcc" "src/crypto/CMakeFiles/onoff_crypto.dir/keccak.cc.o.d"
  "/root/repo/src/crypto/ripemd160.cc" "src/crypto/CMakeFiles/onoff_crypto.dir/ripemd160.cc.o" "gcc" "src/crypto/CMakeFiles/onoff_crypto.dir/ripemd160.cc.o.d"
  "/root/repo/src/crypto/secp256k1.cc" "src/crypto/CMakeFiles/onoff_crypto.dir/secp256k1.cc.o" "gcc" "src/crypto/CMakeFiles/onoff_crypto.dir/secp256k1.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/onoff_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/onoff_crypto.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/onoff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
