# Empty compiler generated dependencies file for onoff_crypto.
# This may be replaced when dependencies are built.
