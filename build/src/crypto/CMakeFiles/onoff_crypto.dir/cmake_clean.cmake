file(REMOVE_RECURSE
  "CMakeFiles/onoff_crypto.dir/keccak.cc.o"
  "CMakeFiles/onoff_crypto.dir/keccak.cc.o.d"
  "CMakeFiles/onoff_crypto.dir/ripemd160.cc.o"
  "CMakeFiles/onoff_crypto.dir/ripemd160.cc.o.d"
  "CMakeFiles/onoff_crypto.dir/secp256k1.cc.o"
  "CMakeFiles/onoff_crypto.dir/secp256k1.cc.o.d"
  "CMakeFiles/onoff_crypto.dir/sha256.cc.o"
  "CMakeFiles/onoff_crypto.dir/sha256.cc.o.d"
  "libonoff_crypto.a"
  "libonoff_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
