file(REMOVE_RECURSE
  "libonoff_crypto.a"
)
