file(REMOVE_RECURSE
  "libonoff_easm.a"
)
