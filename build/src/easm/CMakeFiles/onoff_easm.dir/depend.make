# Empty dependencies file for onoff_easm.
# This may be replaced when dependencies are built.
