file(REMOVE_RECURSE
  "CMakeFiles/onoff_easm.dir/assembler.cc.o"
  "CMakeFiles/onoff_easm.dir/assembler.cc.o.d"
  "libonoff_easm.a"
  "libonoff_easm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_easm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
