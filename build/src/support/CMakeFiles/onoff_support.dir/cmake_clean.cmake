file(REMOVE_RECURSE
  "CMakeFiles/onoff_support.dir/bytes.cc.o"
  "CMakeFiles/onoff_support.dir/bytes.cc.o.d"
  "CMakeFiles/onoff_support.dir/status.cc.o"
  "CMakeFiles/onoff_support.dir/status.cc.o.d"
  "CMakeFiles/onoff_support.dir/u256.cc.o"
  "CMakeFiles/onoff_support.dir/u256.cc.o.d"
  "libonoff_support.a"
  "libonoff_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
