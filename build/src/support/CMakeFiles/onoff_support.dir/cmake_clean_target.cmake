file(REMOVE_RECURSE
  "libonoff_support.a"
)
