# Empty dependencies file for onoff_support.
# This may be replaced when dependencies are built.
