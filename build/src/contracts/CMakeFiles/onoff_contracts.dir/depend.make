# Empty dependencies file for onoff_contracts.
# This may be replaced when dependencies are built.
