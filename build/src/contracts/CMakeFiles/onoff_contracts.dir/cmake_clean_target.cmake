file(REMOVE_RECURSE
  "libonoff_contracts.a"
)
