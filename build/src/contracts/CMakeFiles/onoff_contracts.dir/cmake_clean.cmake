file(REMOVE_RECURSE
  "CMakeFiles/onoff_contracts.dir/betting.cc.o"
  "CMakeFiles/onoff_contracts.dir/betting.cc.o.d"
  "CMakeFiles/onoff_contracts.dir/codegen.cc.o"
  "CMakeFiles/onoff_contracts.dir/codegen.cc.o.d"
  "CMakeFiles/onoff_contracts.dir/synthetic.cc.o"
  "CMakeFiles/onoff_contracts.dir/synthetic.cc.o.d"
  "libonoff_contracts.a"
  "libonoff_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
