file(REMOVE_RECURSE
  "CMakeFiles/onoff_abi.dir/abi.cc.o"
  "CMakeFiles/onoff_abi.dir/abi.cc.o.d"
  "libonoff_abi.a"
  "libonoff_abi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_abi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
