file(REMOVE_RECURSE
  "libonoff_abi.a"
)
