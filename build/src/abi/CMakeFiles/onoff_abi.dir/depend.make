# Empty dependencies file for onoff_abi.
# This may be replaced when dependencies are built.
