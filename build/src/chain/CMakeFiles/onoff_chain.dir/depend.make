# Empty dependencies file for onoff_chain.
# This may be replaced when dependencies are built.
