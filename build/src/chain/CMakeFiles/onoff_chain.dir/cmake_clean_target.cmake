file(REMOVE_RECURSE
  "libonoff_chain.a"
)
