
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cc" "src/chain/CMakeFiles/onoff_chain.dir/block.cc.o" "gcc" "src/chain/CMakeFiles/onoff_chain.dir/block.cc.o.d"
  "/root/repo/src/chain/blockchain.cc" "src/chain/CMakeFiles/onoff_chain.dir/blockchain.cc.o" "gcc" "src/chain/CMakeFiles/onoff_chain.dir/blockchain.cc.o.d"
  "/root/repo/src/chain/network.cc" "src/chain/CMakeFiles/onoff_chain.dir/network.cc.o" "gcc" "src/chain/CMakeFiles/onoff_chain.dir/network.cc.o.d"
  "/root/repo/src/chain/transaction.cc" "src/chain/CMakeFiles/onoff_chain.dir/transaction.cc.o" "gcc" "src/chain/CMakeFiles/onoff_chain.dir/transaction.cc.o.d"
  "/root/repo/src/chain/tx_pool.cc" "src/chain/CMakeFiles/onoff_chain.dir/tx_pool.cc.o" "gcc" "src/chain/CMakeFiles/onoff_chain.dir/tx_pool.cc.o.d"
  "/root/repo/src/chain/validator.cc" "src/chain/CMakeFiles/onoff_chain.dir/validator.cc.o" "gcc" "src/chain/CMakeFiles/onoff_chain.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/onoff_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/onoff_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/rlp/CMakeFiles/onoff_rlp.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/onoff_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/onoff_state.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/onoff_evm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
