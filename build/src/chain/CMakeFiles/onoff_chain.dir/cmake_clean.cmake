file(REMOVE_RECURSE
  "CMakeFiles/onoff_chain.dir/block.cc.o"
  "CMakeFiles/onoff_chain.dir/block.cc.o.d"
  "CMakeFiles/onoff_chain.dir/blockchain.cc.o"
  "CMakeFiles/onoff_chain.dir/blockchain.cc.o.d"
  "CMakeFiles/onoff_chain.dir/network.cc.o"
  "CMakeFiles/onoff_chain.dir/network.cc.o.d"
  "CMakeFiles/onoff_chain.dir/transaction.cc.o"
  "CMakeFiles/onoff_chain.dir/transaction.cc.o.d"
  "CMakeFiles/onoff_chain.dir/tx_pool.cc.o"
  "CMakeFiles/onoff_chain.dir/tx_pool.cc.o.d"
  "CMakeFiles/onoff_chain.dir/validator.cc.o"
  "CMakeFiles/onoff_chain.dir/validator.cc.o.d"
  "libonoff_chain.a"
  "libonoff_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoff_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
