# Empty dependencies file for betting_dispute.
# This may be replaced when dependencies are built.
