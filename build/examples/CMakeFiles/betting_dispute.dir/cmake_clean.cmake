file(REMOVE_RECURSE
  "CMakeFiles/betting_dispute.dir/betting_dispute.cpp.o"
  "CMakeFiles/betting_dispute.dir/betting_dispute.cpp.o.d"
  "betting_dispute"
  "betting_dispute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betting_dispute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
