file(REMOVE_RECURSE
  "CMakeFiles/split_generic.dir/split_generic.cpp.o"
  "CMakeFiles/split_generic.dir/split_generic.cpp.o.d"
  "split_generic"
  "split_generic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_generic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
