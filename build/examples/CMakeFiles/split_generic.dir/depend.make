# Empty dependencies file for split_generic.
# This may be replaced when dependencies are built.
