# Empty compiler generated dependencies file for networked_bet.
# This may be replaced when dependencies are built.
