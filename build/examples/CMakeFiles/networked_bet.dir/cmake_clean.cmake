file(REMOVE_RECURSE
  "CMakeFiles/networked_bet.dir/networked_bet.cpp.o"
  "CMakeFiles/networked_bet.dir/networked_bet.cpp.o.d"
  "networked_bet"
  "networked_bet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/networked_bet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
