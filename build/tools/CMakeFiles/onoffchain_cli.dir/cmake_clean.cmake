file(REMOVE_RECURSE
  "CMakeFiles/onoffchain_cli.dir/onoffchain_cli.cpp.o"
  "CMakeFiles/onoffchain_cli.dir/onoffchain_cli.cpp.o.d"
  "onoffchain_cli"
  "onoffchain_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onoffchain_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
