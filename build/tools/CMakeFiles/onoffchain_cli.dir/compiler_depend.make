# Empty compiler generated dependencies file for onoffchain_cli.
# This may be replaced when dependencies are built.
