# Empty dependencies file for betting_test.
# This may be replaced when dependencies are built.
