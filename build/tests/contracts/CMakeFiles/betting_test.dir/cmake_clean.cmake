file(REMOVE_RECURSE
  "CMakeFiles/betting_test.dir/betting_test.cc.o"
  "CMakeFiles/betting_test.dir/betting_test.cc.o.d"
  "betting_test"
  "betting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
