# CMake generated Testfile for 
# Source directory: /root/repo/tests/contracts
# Build directory: /root/repo/build/tests/contracts
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(betting_test "/root/repo/build/tests/contracts/betting_test")
set_tests_properties(betting_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/contracts/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/contracts/CMakeLists.txt;0;")
add_test(synthetic_test "/root/repo/build/tests/contracts/synthetic_test")
set_tests_properties(synthetic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/contracts/CMakeLists.txt;2;add_onoff_test;/root/repo/tests/contracts/CMakeLists.txt;0;")
