# CMake generated Testfile for 
# Source directory: /root/repo/tests/support
# Build directory: /root/repo/build/tests/support
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(u256_test "/root/repo/build/tests/support/u256_test")
set_tests_properties(u256_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/support/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/support/CMakeLists.txt;0;")
add_test(bytes_test "/root/repo/build/tests/support/bytes_test")
set_tests_properties(bytes_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/support/CMakeLists.txt;2;add_onoff_test;/root/repo/tests/support/CMakeLists.txt;0;")
add_test(status_test "/root/repo/build/tests/support/status_test")
set_tests_properties(status_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/support/CMakeLists.txt;3;add_onoff_test;/root/repo/tests/support/CMakeLists.txt;0;")
