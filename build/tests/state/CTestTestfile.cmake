# CMake generated Testfile for 
# Source directory: /root/repo/tests/state
# Build directory: /root/repo/build/tests/state
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(world_state_test "/root/repo/build/tests/state/world_state_test")
set_tests_properties(world_state_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/state/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/state/CMakeLists.txt;0;")
