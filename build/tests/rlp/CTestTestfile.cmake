# CMake generated Testfile for 
# Source directory: /root/repo/tests/rlp
# Build directory: /root/repo/build/tests/rlp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(rlp_test "/root/repo/build/tests/rlp/rlp_test")
set_tests_properties(rlp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/rlp/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/rlp/CMakeLists.txt;0;")
