# Empty compiler generated dependencies file for rlp_test.
# This may be replaced when dependencies are built.
