# CMake generated Testfile for 
# Source directory: /root/repo/tests/easm
# Build directory: /root/repo/build/tests/easm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(assembler_test "/root/repo/build/tests/easm/assembler_test")
set_tests_properties(assembler_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/easm/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/easm/CMakeLists.txt;0;")
