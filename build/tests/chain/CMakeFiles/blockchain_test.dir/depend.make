# Empty dependencies file for blockchain_test.
# This may be replaced when dependencies are built.
