# CMake generated Testfile for 
# Source directory: /root/repo/tests/chain
# Build directory: /root/repo/build/tests/chain
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(transaction_test "/root/repo/build/tests/chain/transaction_test")
set_tests_properties(transaction_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/chain/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/chain/CMakeLists.txt;0;")
add_test(blockchain_test "/root/repo/build/tests/chain/blockchain_test")
set_tests_properties(blockchain_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/chain/CMakeLists.txt;2;add_onoff_test;/root/repo/tests/chain/CMakeLists.txt;0;")
add_test(validator_test "/root/repo/build/tests/chain/validator_test")
set_tests_properties(validator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/chain/CMakeLists.txt;3;add_onoff_test;/root/repo/tests/chain/CMakeLists.txt;0;")
add_test(network_test "/root/repo/build/tests/chain/network_test")
set_tests_properties(network_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/chain/CMakeLists.txt;4;add_onoff_test;/root/repo/tests/chain/CMakeLists.txt;0;")
