file(REMOVE_RECURSE
  "CMakeFiles/abi_test.dir/abi_test.cc.o"
  "CMakeFiles/abi_test.dir/abi_test.cc.o.d"
  "abi_test"
  "abi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
