# CMake generated Testfile for 
# Source directory: /root/repo/tests/abi
# Build directory: /root/repo/build/tests/abi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(abi_test "/root/repo/build/tests/abi/abi_test")
set_tests_properties(abi_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/abi/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/abi/CMakeLists.txt;0;")
