
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/onoff/protocol_test.cc" "tests/onoff/CMakeFiles/protocol_test.dir/protocol_test.cc.o" "gcc" "tests/onoff/CMakeFiles/protocol_test.dir/protocol_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/onoff/CMakeFiles/onoff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/onoff_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/contracts/CMakeFiles/onoff_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/easm/CMakeFiles/onoff_easm.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/onoff_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/onoff_state.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/onoff_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/rlp/CMakeFiles/onoff_rlp.dir/DependInfo.cmake"
  "/root/repo/build/src/abi/CMakeFiles/onoff_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/onoff_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/onoff_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
