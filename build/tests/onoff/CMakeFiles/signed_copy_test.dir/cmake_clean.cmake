file(REMOVE_RECURSE
  "CMakeFiles/signed_copy_test.dir/signed_copy_test.cc.o"
  "CMakeFiles/signed_copy_test.dir/signed_copy_test.cc.o.d"
  "signed_copy_test"
  "signed_copy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signed_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
