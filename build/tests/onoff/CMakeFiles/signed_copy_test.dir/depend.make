# Empty dependencies file for signed_copy_test.
# This may be replaced when dependencies are built.
