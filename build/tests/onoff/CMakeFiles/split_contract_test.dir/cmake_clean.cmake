file(REMOVE_RECURSE
  "CMakeFiles/split_contract_test.dir/split_contract_test.cc.o"
  "CMakeFiles/split_contract_test.dir/split_contract_test.cc.o.d"
  "split_contract_test"
  "split_contract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
