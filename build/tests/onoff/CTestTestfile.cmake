# CMake generated Testfile for 
# Source directory: /root/repo/tests/onoff
# Build directory: /root/repo/build/tests/onoff
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(message_bus_test "/root/repo/build/tests/onoff/message_bus_test")
set_tests_properties(message_bus_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/onoff/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/onoff/CMakeLists.txt;0;")
add_test(signed_copy_test "/root/repo/build/tests/onoff/signed_copy_test")
set_tests_properties(signed_copy_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/onoff/CMakeLists.txt;2;add_onoff_test;/root/repo/tests/onoff/CMakeLists.txt;0;")
add_test(split_contract_test "/root/repo/build/tests/onoff/split_contract_test")
set_tests_properties(split_contract_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/onoff/CMakeLists.txt;3;add_onoff_test;/root/repo/tests/onoff/CMakeLists.txt;0;")
add_test(protocol_test "/root/repo/build/tests/onoff/protocol_test")
set_tests_properties(protocol_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/onoff/CMakeLists.txt;4;add_onoff_test;/root/repo/tests/onoff/CMakeLists.txt;0;")
