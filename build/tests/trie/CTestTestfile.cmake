# CMake generated Testfile for 
# Source directory: /root/repo/tests/trie
# Build directory: /root/repo/build/tests/trie
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(trie_test "/root/repo/build/tests/trie/trie_test")
set_tests_properties(trie_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/trie/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/trie/CMakeLists.txt;0;")
