# Empty dependencies file for precompiles_test.
# This may be replaced when dependencies are built.
