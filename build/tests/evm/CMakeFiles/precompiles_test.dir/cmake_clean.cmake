file(REMOVE_RECURSE
  "CMakeFiles/precompiles_test.dir/precompiles_test.cc.o"
  "CMakeFiles/precompiles_test.dir/precompiles_test.cc.o.d"
  "precompiles_test"
  "precompiles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precompiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
