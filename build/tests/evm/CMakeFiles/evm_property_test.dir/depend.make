# Empty dependencies file for evm_property_test.
# This may be replaced when dependencies are built.
