file(REMOVE_RECURSE
  "CMakeFiles/evm_property_test.dir/evm_property_test.cc.o"
  "CMakeFiles/evm_property_test.dir/evm_property_test.cc.o.d"
  "evm_property_test"
  "evm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
