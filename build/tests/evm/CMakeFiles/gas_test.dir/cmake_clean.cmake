file(REMOVE_RECURSE
  "CMakeFiles/gas_test.dir/gas_test.cc.o"
  "CMakeFiles/gas_test.dir/gas_test.cc.o.d"
  "gas_test"
  "gas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
