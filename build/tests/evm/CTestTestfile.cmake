# CMake generated Testfile for 
# Source directory: /root/repo/tests/evm
# Build directory: /root/repo/build/tests/evm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(evm_test "/root/repo/build/tests/evm/evm_test")
set_tests_properties(evm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/evm/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/evm/CMakeLists.txt;0;")
add_test(precompiles_test "/root/repo/build/tests/evm/precompiles_test")
set_tests_properties(precompiles_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/evm/CMakeLists.txt;2;add_onoff_test;/root/repo/tests/evm/CMakeLists.txt;0;")
add_test(evm_property_test "/root/repo/build/tests/evm/evm_property_test")
set_tests_properties(evm_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/evm/CMakeLists.txt;3;add_onoff_test;/root/repo/tests/evm/CMakeLists.txt;0;")
add_test(gas_test "/root/repo/build/tests/evm/gas_test")
set_tests_properties(gas_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/evm/CMakeLists.txt;4;add_onoff_test;/root/repo/tests/evm/CMakeLists.txt;0;")
