# CMake generated Testfile for 
# Source directory: /root/repo/tests/crypto
# Build directory: /root/repo/build/tests/crypto
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(keccak_test "/root/repo/build/tests/crypto/keccak_test")
set_tests_properties(keccak_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/crypto/CMakeLists.txt;1;add_onoff_test;/root/repo/tests/crypto/CMakeLists.txt;0;")
add_test(sha256_test "/root/repo/build/tests/crypto/sha256_test")
set_tests_properties(sha256_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/crypto/CMakeLists.txt;2;add_onoff_test;/root/repo/tests/crypto/CMakeLists.txt;0;")
add_test(ripemd160_test "/root/repo/build/tests/crypto/ripemd160_test")
set_tests_properties(ripemd160_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/crypto/CMakeLists.txt;3;add_onoff_test;/root/repo/tests/crypto/CMakeLists.txt;0;")
add_test(secp256k1_test "/root/repo/build/tests/crypto/secp256k1_test")
set_tests_properties(secp256k1_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/crypto/CMakeLists.txt;4;add_onoff_test;/root/repo/tests/crypto/CMakeLists.txt;0;")
