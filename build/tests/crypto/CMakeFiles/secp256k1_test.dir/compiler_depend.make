# Empty compiler generated dependencies file for secp256k1_test.
# This may be replaced when dependencies are built.
