file(REMOVE_RECURSE
  "CMakeFiles/secp256k1_test.dir/secp256k1_test.cc.o"
  "CMakeFiles/secp256k1_test.dir/secp256k1_test.cc.o.d"
  "secp256k1_test"
  "secp256k1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secp256k1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
