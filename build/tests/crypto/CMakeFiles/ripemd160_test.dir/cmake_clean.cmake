file(REMOVE_RECURSE
  "CMakeFiles/ripemd160_test.dir/ripemd160_test.cc.o"
  "CMakeFiles/ripemd160_test.dir/ripemd160_test.cc.o.d"
  "ripemd160_test"
  "ripemd160_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripemd160_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
