# Empty compiler generated dependencies file for ripemd160_test.
# This may be replaced when dependencies are built.
